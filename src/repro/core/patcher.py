"""Automated NPD fixing: apply NChecker's fix suggestions at the IR level.

The paper's user study (§5.4) shows the warning reports let inexperienced
developers fix NPDs in under two minutes; this module goes one step
further and applies the suggested fixes mechanically:

* **missed timeout / retry** — insert the library's config call (with the
  policy/handler-object indirection where the library needs one) before
  the request;
* **improper retry parameters** — append a corrected config call
  (0 retries for background/POST, 2 for user requests);
* **missed connectivity check** — guard the request's method with
  ``getActiveNetworkInfo()`` and an early return;
* **missed failure notification** — insert a Toast into the error path
  (catch block, error callback, or ``onPostExecute``);
* **missed response check** — wrap the unchecked use in a null guard;
* **aggressive retry loop** — add an inter-attempt ``Thread.sleep``;
* **missed error-type check** — inspect the error object's type in the
  callback;
* **UI-thread network** — transplant the blocking method body into a
  fresh ``AsyncTask`` subclass's ``doInBackground`` and dispatch it with
  ``execute()`` (the paper's canonical move-off-main-thread fix);
* **callback leak** — inject the pairing unregistration into the
  component's lifecycle exit method, creating the exit method when the
  class has none;
* **missed offline cache** — install an ``LruCache`` write next to the
  guarded request, giving the offline branch a copy to serve.

``Patcher.patch`` never mutates the input app: it works on a clone (via
the ``.apkt`` round trip) and returns it with a ledger of applied and
skipped fixes.  ``Patcher.patch_in_place`` is the mutating core — it
additionally reports the set of methods it touched, which is what lets
``patch_until_clean`` re-scan incrementally: one clone up front, then
each round patches in place and invalidates only the dirty region of the
scan session's artifact store.  ``scan → patch → rescan`` is expected to
converge to zero findings — the property the tests assert per library
and defect kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..app.apk import APK
from ..app.loader import dumps_apk, loads_apk
from ..callgraph.entrypoints import MethodKey, method_key
from ..obs import metrics as obs_metrics
from ..obs import span
from ..ir.method import IRMethod
from ..ir.statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
)
from ..ir.transform import fresh_label, insert_statements
from ..ir.values import (
    ConditionExpr,
    Const,
    InstanceOfExpr,
    InvokeExpr,
    KIND_SPECIAL,
    KIND_STATIC,
    KIND_VIRTUAL,
    Local,
    MethodSig,
    NewExpr,
)
from .checker import NChecker, ScanResult
from .defects import DefectKind
from .findings import Finding

_CONN_MGR = "android.net.ConnectivityManager"
_TOAST = "android.widget.Toast"
_LRU_CACHE = "android.util.LruCache"


@dataclass
class AppliedPatch:
    kind: DefectKind
    method: MethodKey
    description: str

    def __str__(self) -> str:
        cls, name, _ = self.method
        return f"[{self.kind.value}] {cls}.{name}: {self.description}"


@dataclass
class PatchResult:
    apk: APK
    applied: list[AppliedPatch] = field(default_factory=list)
    skipped: list[tuple[Finding, str]] = field(default_factory=list)
    #: Methods whose bodies this patch round mutated — the incremental
    #: re-scan report: the artifact store invalidates exactly these (and
    #: their dependents) instead of rebuilding the whole app.
    touched: set[MethodKey] = field(default_factory=set)


class Patcher:
    """Applies fix suggestions to a copy of the app."""

    #: Defect kinds this patcher can fix.
    SUPPORTED = frozenset(
        {
            DefectKind.MISSED_CONNECTIVITY_CHECK,
            DefectKind.MISSED_TIMEOUT,
            DefectKind.MISSED_RETRY,
            DefectKind.NO_RETRY_TIME_SENSITIVE,
            DefectKind.OVER_RETRY_SERVICE,
            DefectKind.OVER_RETRY_POST,
            DefectKind.MISSED_NOTIFICATION,
            DefectKind.MISSED_ERROR_TYPE_CHECK,
            DefectKind.MISSED_RESPONSE_CHECK,
            DefectKind.AGGRESSIVE_RETRY_LOOP,
            DefectKind.UI_THREAD_NETWORK,
            DefectKind.CALLBACK_LEAK,
            DefectKind.MISSED_OFFLINE_CACHE,
        }
    )

    def __init__(self, default_timeout_ms: int = 10_000, user_retries: int = 2) -> None:
        self.default_timeout_ms = default_timeout_ms
        self.user_retries = user_retries
        self._label_hint = "npdfix"
        #: Methods beyond the finding's target the current handler edited
        #: (error callbacks, ``onPostExecute``) — folded into
        #: :attr:`PatchResult.touched` by :meth:`_apply_one`.
        self._extra_touched: list[MethodKey] = []

    # ------------------------------------------------------------------

    def patch(self, apk: APK, result: ScanResult) -> PatchResult:
        """Apply fixes for ``result``'s findings to a clone of ``apk``."""
        clone = loads_apk(dumps_apk(apk))
        return self.patch_in_place(clone, result)

    def patch_in_place(self, apk: APK, result: ScanResult) -> PatchResult:
        """Apply fixes directly to ``apk``, mutating its methods.

        The returned :attr:`PatchResult.touched` lists every mutated
        method, so a caller holding a scan session can invalidate just
        the dirty region (``session.invalidate_methods(outcome.touched)``)
        instead of re-deriving the whole app.
        """
        outcome = PatchResult(apk)

        with span("patch-round", package=apk.package):
            # Group by target method and apply bottom-up so earlier statement
            # indices stay valid across insertions.
            per_method: dict[MethodKey, list[Finding]] = {}
            for finding in result.findings:
                per_method.setdefault(
                    self._target_method_key(finding), []
                ).append(finding)

            for key, findings in per_method.items():
                method = self._resolve(apk, key)
                if method is None:
                    for finding in findings:
                        outcome.skipped.append((finding, f"method {key} not found"))
                    continue
                for finding in sorted(
                    findings, key=lambda f: self._anchor_index(f), reverse=True
                ):
                    self._apply_one(apk, method, finding, outcome)
                method.validate()
        registry = obs_metrics()
        registry.inc("patcher.rounds")
        registry.inc("patcher.patches_applied", len(outcome.applied))
        registry.observe("patcher.touched_methods", len(outcome.touched))
        return outcome

    def patch_until_clean(
        self,
        apk: APK,
        checker: Optional[NChecker] = None,
        max_rounds: int = 3,
        incremental: bool = True,
    ) -> tuple[APK, list[AppliedPatch]]:
        """Iterate scan → patch until no findings remain (or give up).

        The default mode clones the input once, then patches it in place
        and narrows each re-scan to the patched methods' dirty region via
        the scan session's artifact store.  ``incremental=False`` is the
        pre-pipeline behaviour — clone and re-derive everything every
        round — kept as the benchmark baseline.
        """
        checker = checker or NChecker()
        applied: list[AppliedPatch] = []
        if not incremental:
            current = apk
            for _round in range(max_rounds):
                result = checker.scan(current)
                if not result.findings:
                    break
                outcome = self.patch(current, result)
                applied.extend(outcome.applied)
                if not outcome.applied:
                    break  # nothing more we can do
                current = outcome.apk
            return current, applied

        working = loads_apk(dumps_apk(apk))
        session = checker.open_session(working)
        for _round in range(max_rounds):
            result = session.scan()
            if not result.findings:
                break
            outcome = self.patch_in_place(working, result)
            applied.extend(outcome.applied)
            if not outcome.applied:
                break  # nothing more we can do
            session.invalidate_methods(outcome.touched)
            obs_metrics().inc("patcher.incremental_rescans")
        return working, applied

    # -- dispatch -------------------------------------------------------

    def _apply_one(
        self, apk: APK, method: IRMethod, finding: Finding, outcome: PatchResult
    ) -> None:
        kind = finding.kind
        if kind not in self.SUPPORTED:
            outcome.skipped.append((finding, "unsupported defect kind"))
            return
        try:
            handler = {
                DefectKind.MISSED_CONNECTIVITY_CHECK: self._fix_connectivity,
                DefectKind.MISSED_TIMEOUT: self._fix_timeout,
                DefectKind.MISSED_RETRY: self._fix_retry,
                DefectKind.NO_RETRY_TIME_SENSITIVE: self._fix_retry_value,
                DefectKind.OVER_RETRY_SERVICE: self._fix_retry_value,
                DefectKind.OVER_RETRY_POST: self._fix_retry_value,
                DefectKind.MISSED_NOTIFICATION: self._fix_notification,
                DefectKind.MISSED_ERROR_TYPE_CHECK: self._fix_error_types,
                DefectKind.MISSED_RESPONSE_CHECK: self._fix_response_check,
                DefectKind.AGGRESSIVE_RETRY_LOOP: self._fix_backoff,
                DefectKind.UI_THREAD_NETWORK: self._fix_ui_thread,
                DefectKind.CALLBACK_LEAK: self._fix_callback_leak,
                DefectKind.MISSED_OFFLINE_CACHE: self._fix_offline_cache,
            }[kind]
            self._extra_touched = []
            description = handler(apk, method, finding)
        except _Unfixable as exc:
            outcome.skipped.append((finding, str(exc)))
            return
        outcome.applied.append(
            AppliedPatch(kind, self._target_method_key(finding), description)
        )
        outcome.touched.add(self._target_method_key(finding))
        outcome.touched.update(self._extra_touched)

    def _target_method_key(self, finding: Finding) -> MethodKey:
        # Response-check findings anchor at the use site and aggressive-loop
        # findings at the loop's own method — both may differ from the
        # request's method (async callbacks, Fig 6(d) caller loops).
        if finding.request is not None and finding.kind not in (
            DefectKind.MISSED_RESPONSE_CHECK,
            DefectKind.AGGRESSIVE_RETRY_LOOP,
        ):
            return finding.request.key
        return finding.method_key

    def _anchor_index(self, finding: Finding) -> int:
        if finding.kind is DefectKind.MISSED_CONNECTIVITY_CHECK:
            return 0  # method-entry guard: apply after body patches
        if finding.kind is DefectKind.UI_THREAD_NETWORK:
            # Whole-body transplant: apply after every in-body patch so
            # the worker inherits the already-fixed statements.
            return -1
        return finding.stmt_index

    @staticmethod
    def _resolve(apk: APK, key: MethodKey) -> Optional[IRMethod]:
        cls = apk.get_class(key[0])
        if cls is None:
            return None
        return cls.get_method(key[1], key[2])

    # -- concrete fixes ------------------------------------------------------

    def _fix_connectivity(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        """Method-entry guard: bail out early when offline."""
        cont = fresh_label(method, self._label_hint)
        cm = Local("$npd_cm", _CONN_MGR)
        ni = Local("$npd_ni")
        stmts: list[Stmt] = [
            AssignStmt(cm, NewExpr(_CONN_MGR)),
            InvokeStmt(InvokeExpr(KIND_SPECIAL, cm, MethodSig(_CONN_MGR, "<init>"))),
            AssignStmt(
                ni,
                InvokeExpr(
                    KIND_VIRTUAL, cm,
                    MethodSig(_CONN_MGR, "getActiveNetworkInfo", (), "android.net.NetworkInfo"),
                ),
            ),
            IfStmt(ConditionExpr("!=", ni, Const(None)), cont),
            self._default_return(method),
        ]
        insert_statements(method, 0, stmts, new_labels={cont: len(stmts)})
        return "guarded method entry with getActiveNetworkInfo()"

    @staticmethod
    def _default_return(method: IRMethod) -> ReturnStmt:
        rt = method.sig.return_type
        if rt == "void":
            return ReturnStmt()
        if rt in ("int", "long", "short", "byte"):
            return ReturnStmt(Const(0))
        if rt == "boolean":
            return ReturnStmt(Const(False))
        if rt in ("float", "double"):
            return ReturnStmt(Const(0.0))
        return ReturnStmt(Const(None))

    def _fix_timeout(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        request = self._require_request(finding)
        lib_key = request.library.key
        target = self._client_local(method, finding)
        site = self._current_index_of(method, finding)
        if lib_key == "httpurlconnection":
            stmts = [
                _vcall(target, "java.net.HttpURLConnection", "setConnectTimeout",
                       Const(self.default_timeout_ms)),
                _vcall(target, "java.net.HttpURLConnection", "setReadTimeout",
                       Const(self.default_timeout_ms)),
            ]
        elif lib_key == "apache":
            params = Local("$npd_params")
            stmts = [
                AssignStmt(
                    params,
                    InvokeExpr(
                        KIND_VIRTUAL, target,
                        MethodSig(
                            "org.apache.http.impl.client.DefaultHttpClient",
                            "getParams", (), "org.apache.http.params.HttpParams",
                        ),
                    ),
                ),
                InvokeStmt(
                    InvokeExpr(
                        KIND_STATIC, None,
                        MethodSig(
                            "org.apache.http.params.HttpConnectionParams",
                            "setConnectionTimeout", ("?", "?"),
                        ),
                        (params, Const(self.default_timeout_ms)),
                    )
                ),
            ]
        elif lib_key == "volley":
            return self._install_volley_policy(
                method, finding, retries=1, reason="timeout"
            )
        elif lib_key == "okhttp":
            stmts = [
                _vcall(target, "com.squareup.okhttp.OkHttpClient", "setReadTimeout",
                       Const(self.default_timeout_ms)),
            ]
        elif lib_key == "asynchttp":
            stmts = [
                _vcall(target, "com.loopj.android.http.AsyncHttpClient", "setTimeout",
                       Const(self.default_timeout_ms)),
            ]
        else:  # basichttp
            stmts = [
                _vcall(
                    target, "com.turbomanage.httpclient.BasicHttpClient",
                    "setReadWriteTimeout", Const(self.default_timeout_ms),
                ),
            ]
        insert_statements(method, site, stmts, retarget_labels_at_index=True)
        return f"set a {self.default_timeout_ms} ms timeout"

    def _fix_retry(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        request = self._require_request(finding)
        # Retry counts follow the request context (paper §6.1): POSTs and
        # background-only requests get 0 retries, user requests a couple.
        value = self.user_retries
        if request.is_post or (request.background and not request.user_initiated):
            value = 0
        return self._set_retries(method, finding, value)

    def _fix_retry_value(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        request = self._require_request(finding)
        value = self.user_retries
        if finding.kind in (DefectKind.OVER_RETRY_SERVICE, DefectKind.OVER_RETRY_POST):
            value = 0
        return self._set_retries(method, finding, value)

    def _set_retries(self, method: IRMethod, finding: Finding, value: int) -> str:
        request = self._require_request(finding)
        lib_key = request.library.key
        target = self._client_local(method, finding)
        site = self._current_index_of(method, finding)
        if lib_key == "volley":
            return self._install_volley_policy(
                method, finding, retries=value, reason="retries"
            )
        if lib_key == "apache":
            handler = Local("$npd_rh")
            stmts = [
                AssignStmt(
                    handler,
                    NewExpr("org.apache.http.impl.client.DefaultHttpRequestRetryHandler"),
                ),
                InvokeStmt(
                    InvokeExpr(
                        KIND_SPECIAL, handler,
                        MethodSig(
                            "org.apache.http.impl.client.DefaultHttpRequestRetryHandler",
                            "<init>", ("?", "?"),
                        ),
                        (Const(value), Const(False)),
                    )
                ),
                _vcall(
                    target, "org.apache.http.impl.client.DefaultHttpClient",
                    "setHttpRequestRetryHandler", handler,
                ),
            ]
        elif lib_key == "okhttp":
            stmts = [
                _vcall(
                    target, "com.squareup.okhttp.OkHttpClient",
                    "setRetryOnConnectionFailure", Const(value > 0),
                ),
            ]
        elif lib_key == "asynchttp":
            stmts = [
                _vcall(
                    target, "com.loopj.android.http.AsyncHttpClient",
                    "setMaxRetriesAndTimeout", Const(value), Const(1000),
                ),
            ]
        elif lib_key == "basichttp":
            stmts = [
                _vcall(
                    target, "com.turbomanage.httpclient.BasicHttpClient",
                    "setMaxRetries", Const(value),
                ),
            ]
        else:
            raise _Unfixable(f"no retry API for {lib_key}")
        insert_statements(method, site, stmts, retarget_labels_at_index=True)
        return f"set retries to {value}"

    def _install_volley_policy(
        self, method: IRMethod, finding: Finding, retries: int, reason: str
    ) -> str:
        request_local = self._client_local(method, finding)
        site = self._current_index_of(method, finding)
        policy = Local("$npd_policy")
        stmts = [
            AssignStmt(policy, NewExpr("com.android.volley.DefaultRetryPolicy")),
            InvokeStmt(
                InvokeExpr(
                    KIND_SPECIAL, policy,
                    MethodSig(
                        "com.android.volley.DefaultRetryPolicy", "<init>",
                        ("?", "?", "?"),
                    ),
                    (Const(self.default_timeout_ms), Const(retries), Const(1)),
                )
            ),
            _vcall(
                request_local, "com.android.volley.Request", "setRetryPolicy", policy
            ),
        ]
        insert_statements(method, site, stmts, retarget_labels_at_index=True)
        return f"installed DefaultRetryPolicy({self.default_timeout_ms}, {retries}, 1)"

    def _fix_notification(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        request = finding.request
        site = self._current_index_of(method, finding)
        # Preferred spot: the catch block covering the request.
        traps = method.traps_covering(site) if site < len(method.statements) else []
        if traps:
            handler_index = method.label_index(traps[0].handler) + 1  # after bind
            insert_statements(method, handler_index, _toast_statements())
            return "added a Toast to the catch block"
        # Async library: the registered error callback.
        callback = self._error_callback_method(apk, finding)
        if callback is not None:
            insert_statements(callback, 0, _toast_statements())
            self._extra_touched.append(method_key(callback))
            return f"added a Toast to {callback.sig.qualified_name}"
        # AsyncTask: onPostExecute.
        cls = apk.get_class(method.class_name)
        if cls is not None and method.name == "doInBackground":
            for name, arity in cls.method_keys():
                if name == "onPostExecute":
                    post = cls.get_method(name, arity)
                    insert_statements(post, 0, _toast_statements())
                    self._extra_touched.append(method_key(post))
                    return "added a Toast to onPostExecute"
        raise _Unfixable("no error path to attach a notification to")

    def _fix_error_types(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        callback = self._error_callback_method(apk, finding)
        if callback is None or not callback.params:
            raise _Unfixable("error callback not found")
        error_param = callback.params[0]
        check = AssignStmt(
            Local("$npd_isconn"),
            InstanceOfExpr(error_param, "com.android.volley.NoConnectionError"),
        )
        insert_statements(callback, 0, [check])
        self._extra_touched.append(method_key(callback))
        return "inspect the error type (instanceof NoConnectionError)"

    def _fix_response_check(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        # The finding anchors at the *use* site (not the request call), and
        # response-check patches are applied before lower-index insertions,
        # so the recorded index is still valid in the clone.
        site = min(finding.stmt_index, len(method.statements) - 1)
        use = method.statements[site]
        invoke = use.invoke()
        if invoke is None or invoke.base is None:
            # Defensive: find the nearest receiver-call if indices drifted.
            candidates = [
                idx
                for idx, iv in method.invoke_sites()
                if iv.base is not None
            ]
            if not candidates:
                raise _Unfixable("unchecked use is not a method call on the response")
            site = min(candidates, key=lambda idx: abs(idx - finding.stmt_index))
            invoke = method.statements[site].invoke()
        # Emit:  if resp != null goto use; <toast>; goto skip; use: <use>; skip:
        # — the §6.1 guideline shape: an invalid response both skips the
        # dereference *and* tells the user something went wrong.
        use_label = fresh_label(method, self._label_hint)
        skip = fresh_label(method, f"{self._label_hint}skip")
        block: list[Stmt] = [
            IfStmt(ConditionExpr("!=", invoke.base, Const(None)), use_label),
            *_toast_statements(),
            GotoStmt(skip),
        ]
        insert_statements(method, site, block, new_labels={use_label: len(block)})
        # The skip label lands just after the (now shifted) use statement.
        method.labels[skip] = site + len(block) + 1
        return "null-guarded the response dereference (with an error message)"

    def _error_callback_method(self, apk: APK, finding: Finding) -> Optional[IRMethod]:
        """The registered error-callback method for an async request: the
        first class allocated in the request's method that implements a
        known error-callback interface."""
        from ..libmodels import default_registry
        from ..libmodels.annotations import CallbackRole

        registry = default_registry()
        method = self._resolve(apk, self._target_method_key(finding))
        if method is None:
            return None
        for stmt in method.statements:
            if not (isinstance(stmt, AssignStmt) and isinstance(stmt.value, NewExpr)):
                continue
            cls = apk.get_class(stmt.value.class_name)
            if cls is None:
                continue
            interfaces = apk.hierarchy.supertypes(cls.name) | set(cls.interfaces)
            for iface in interfaces:
                for name, arity in cls.method_keys():
                    found = registry.find_callback_spec(iface, name)
                    if found is None:
                        continue
                    _lib, spec = found
                    if spec.role in (CallbackRole.ERROR, CallbackRole.COMBINED):
                        return cls.get_method(name, arity)
        return None

    def _fix_backoff(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        header = finding.details.get("loop_header")
        if header is None:
            raise _Unfixable("loop header unknown")
        sleep = InvokeStmt(
            InvokeExpr(
                KIND_STATIC, None,
                MethodSig("java.lang.Thread", "sleep", ("?",)),
                (Const(5000),),
            )
        )
        insert_statements(method, int(header) + 1, [sleep])
        return "added a 5 s inter-attempt delay"

    # -- extended-taxonomy fixes ---------------------------------------------

    def _fix_ui_thread(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        """Move-off-main-thread: transplant the whole blocking method body
        into a fresh ``AsyncTask`` subclass's ``doInBackground`` and leave
        an ``execute()`` dispatch behind."""
        from ..app.components import ASYNC_TASK_CLASS
        from ..ir.classes import IRClass

        worker_name = f"{method.class_name}$NpdWorker_{method.name}"
        if apk.get_class(worker_name) is not None:
            raise _Unfixable(f"worker class {worker_name} already exists")
        work = IRMethod(
            MethodSig(worker_name, "doInBackground", ("?",), "java.lang.Object"),
            params=[Local("params")],
            statements=list(method.statements),
            labels=dict(method.labels),
            traps=list(method.traps),
        )
        if work.statements and isinstance(work.statements[-1], ReturnStmt):
            # The original return carries the host's return type;
            # normalise to the callback's reference return.
            work.statements[-1] = ReturnStmt(Const(None))
        else:
            work.statements.append(ReturnStmt(Const(None)))
        worker = IRClass(name=worker_name, superclass=ASYNC_TASK_CLASS)
        worker.add_method(work)
        apk.add_class(worker)
        work.validate()

        task = Local("$npd_task", worker_name)
        method.statements = [
            AssignStmt(task, NewExpr(worker_name)),
            InvokeStmt(
                InvokeExpr(KIND_SPECIAL, task, MethodSig(worker_name, "<init>"))
            ),
            InvokeStmt(
                InvokeExpr(KIND_VIRTUAL, task, MethodSig(worker_name, "execute"))
            ),
            self._default_return(method),
        ]
        method.labels = {}
        method.traps = []
        self._extra_touched.append(method_key(work))
        return f"moved the blocking body to {worker_name}.doInBackground"

    def _fix_callback_leak(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        """Inject the pairing unregistration into the component's first
        lifecycle exit method, creating the method if the class has none."""
        from ..app.components import ComponentKind
        from .checks.callback_leak import EXIT_LIFECYCLE_METHODS

        expected = finding.details.get("expected_unregister") or []
        if not expected:
            raise _Unfixable("no known unregistration API for this registration")
        kind_value = finding.details.get("component_kind")
        try:
            component = ComponentKind(kind_value)
        except ValueError:
            raise _Unfixable(f"unknown component kind {kind_value!r}") from None
        exits = EXIT_LIFECYCLE_METHODS.get(component, ())
        if not exits:
            raise _Unfixable(f"{component.value} has no lifecycle exit method")
        cls = apk.get_class(method.class_name)
        if cls is None:
            raise _Unfixable(f"class {method.class_name} not found")
        exit_method = None
        for name in exits:
            for mname, arity in cls.method_keys():
                if mname == name:
                    exit_method = cls.get_method(mname, arity)
                    break
            if exit_method is not None:
                break
        if exit_method is None:
            exit_method = IRMethod(
                MethodSig(method.class_name, exits[0], (), "void"),
                params=[],
                statements=[ReturnStmt()],
            )
            cls.add_method(exit_method)
        insert_statements(exit_method, 0, self._unregister_statements(expected[0]))
        exit_method.validate()
        self._extra_touched.append(method_key(exit_method))
        return f"unregister the callback in {exit_method.name}()"

    @staticmethod
    def _unregister_statements(unregister: str) -> list[Stmt]:
        if unregister == "unregisterReceiver":
            recv = Local("$npd_recv")
            return [
                AssignStmt(recv, NewExpr("android.content.BroadcastReceiver")),
                InvokeStmt(
                    InvokeExpr(
                        KIND_SPECIAL, recv,
                        MethodSig("android.content.BroadcastReceiver", "<init>"),
                    )
                ),
                InvokeStmt(
                    InvokeExpr(
                        KIND_VIRTUAL, Local("this"),
                        MethodSig("android.content.Context", "unregisterReceiver", ("?",)),
                        (recv,),
                    )
                ),
            ]
        cm = Local("$npd_cm", _CONN_MGR)
        cb = Local("$npd_cb")
        callback_cls = "android.net.ConnectivityManager$NetworkCallback"
        return [
            AssignStmt(cm, NewExpr(_CONN_MGR)),
            InvokeStmt(InvokeExpr(KIND_SPECIAL, cm, MethodSig(_CONN_MGR, "<init>"))),
            AssignStmt(cb, NewExpr(callback_cls)),
            InvokeStmt(InvokeExpr(KIND_SPECIAL, cb, MethodSig(callback_cls, "<init>"))),
            InvokeStmt(
                InvokeExpr(
                    KIND_VIRTUAL, cm,
                    MethodSig(_CONN_MGR, unregister, ("?",)),
                    (cb,),
                )
            ),
        ]

    def _fix_offline_cache(self, apk: APK, method: IRMethod, finding: Finding) -> str:
        """Give the guarded request's offline branch something to serve:
        write the response into an ``LruCache`` next to the request."""
        site = self._current_index_of(method, finding)
        cache = Local("$npd_cache", _LRU_CACHE)
        stmts: list[Stmt] = [
            AssignStmt(cache, NewExpr(_LRU_CACHE)),
            InvokeStmt(
                InvokeExpr(KIND_SPECIAL, cache, MethodSig(_LRU_CACHE, "<init>"))
            ),
            _vcall(cache, _LRU_CACHE, "put", Const("latest"), Const("data")),
        ]
        insert_statements(method, site, stmts, retarget_labels_at_index=True)
        return "cache the response for the offline branch (LruCache.put)"

    # -- helpers -------------------------------------------------------------

    def _require_request(self, finding: Finding):
        if finding.request is None:
            raise _Unfixable("finding has no associated request")
        return finding.request

    def _current_index_of(self, method: IRMethod, finding: Finding) -> int:
        """The request statement's index in the (possibly already patched)
        clone: matched by the target API invoke closest to the recorded
        index."""
        request = finding.request
        wanted_name = None
        if request is not None:
            wanted_name = request.invoke.sig.name
        candidates = [
            idx
            for idx, invoke in method.invoke_sites()
            if wanted_name is None or invoke.sig.name == wanted_name
        ]
        if not candidates:
            return min(finding.stmt_index, len(method.statements) - 1)
        return min(candidates, key=lambda idx: abs(idx - finding.stmt_index))

    def _client_local(self, method: IRMethod, finding: Finding) -> Local:
        """The local to configure: the request's config object, following
        OkHttp's call→client indirection one hop back."""
        request = self._require_request(finding)
        site = self._current_index_of(method, finding)
        invoke = method.statements[site].invoke()
        if invoke is None:
            raise _Unfixable("request call site not found in patched method")
        if request.target.config_object_param is not None:
            arg = invoke.args[request.target.config_object_param]
            if isinstance(arg, Local):
                return arg
            raise _Unfixable("config object argument is not a local")
        base = invoke.base
        if base is None:
            raise _Unfixable("static request without a client object")
        if request.library.key == "okhttp":
            # call = client.newCall(...): configure the client.
            for idx in range(site - 1, -1, -1):
                stmt = method.statements[idx]
                if (
                    isinstance(stmt, AssignStmt)
                    and isinstance(stmt.target, Local)
                    and stmt.target == base
                    and isinstance(stmt.value, InvokeExpr)
                    and stmt.value.base is not None
                ):
                    return stmt.value.base
        return base


class _Unfixable(Exception):
    """Raised when a finding cannot be patched mechanically."""


def _vcall(base: Local, cls: str, name: str, *args) -> InvokeStmt:
    return InvokeStmt(
        InvokeExpr(
            KIND_VIRTUAL, base,
            MethodSig(cls, name, tuple("?" for _ in args)),
            tuple(args),
        )
    )


def _toast_statements() -> list[Stmt]:
    toast = Local("$npd_toast")
    return [
        AssignStmt(
            toast,
            InvokeExpr(
                KIND_STATIC, None,
                MethodSig(_TOAST, "makeText", ("?", "?", "?"), _TOAST),
                (Const("ctx"), Const("Network error"), Const(0)),
            ),
        ),
        InvokeStmt(InvokeExpr(KIND_VIRTUAL, toast, MethodSig(_TOAST, "show"))),
    ]
