"""Network-request extraction and context inference (paper §4.4.2).

A *network request* is a call site of an annotated target API.  For each
request NChecker needs:

* the initiating entry points (user-initiated Activity/UI vs. background
  Service) — reachability over the call graph;
* the HTTP method (POST requests must not be auto-retried) — from the
  target API itself, from Volley request-constructor codes, from Apache
  request-object classes, or from ``setRequestMethod`` constants;
* the *config object* whose configuration calls the taint analysis must
  collect (the client receiver, or Volley's request argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..app.apk import APK
from ..callgraph.cha import CallGraph
from ..callgraph.entrypoints import EntryPoint, MethodKey, method_key
from ..callgraph.reachability import CallChain, chains_to_method
from ..callgraph.resolve import MethodAnalysisCache, origin_classes
from ..dataflow.constants import ConstantPropagation
from ..dataflow.taint import trace_origins
from ..ir.method import IRMethod
from ..ir.statements import AssignStmt
from ..ir.values import InvokeExpr, Local, NewExpr
from ..libmodels.annotations import (
    HttpMethod,
    LibraryModel,
    LibraryRegistry,
    TargetAPI,
)
from ..libmodels.volley import VOLLEY_METHOD_CODES

if TYPE_CHECKING:
    from ..dataflow.summaries import SummaryEngine
    from ..dataflow.threadcontext import ThreadContextAnalysis
    from .retry_loops import RetryLoop

#: A stable request identity: the enclosing method plus the statement
#: index of the call site.  Survives request copies and serialization,
#: unlike ``id(request)``.
RequestLocation = tuple[MethodKey, int]

#: Apache request-object classes → HTTP method.
_APACHE_REQUEST_CLASSES: dict[str, HttpMethod] = {
    "org.apache.http.client.methods.HttpGet": HttpMethod.GET,
    "org.apache.http.client.methods.HttpPost": HttpMethod.POST,
    "org.apache.http.client.methods.HttpPut": HttpMethod.PUT,
    "org.apache.http.client.methods.HttpDelete": HttpMethod.DELETE,
}


@dataclass
class AnalysisContext:
    """Shared state for one app scan: the APK, annotations, call graph,
    and the per-method analysis cache."""

    apk: APK
    registry: LibraryRegistry
    callgraph: CallGraph
    cache: MethodAnalysisCache
    #: Customized retry loops (§4.5), populated by the orchestrator so the
    #: config-API check can credit hand-rolled retry logic.
    retry_loops: list["RetryLoop"] = field(default_factory=list)
    #: The interprocedural summary engine (``NCheckerOptions.summary_based``);
    #: ``None`` runs the checks on their legacy horizon-limited paths.
    summaries: Optional["SummaryEngine"] = None
    #: Per-method thread contexts (`repro.dataflow.threadcontext`),
    #: injected by the scan session only when an enabled pass reads the
    #: ``threadcontext`` artifact.
    threadcontext: Optional["ThreadContextAnalysis"] = None

    @classmethod
    def build(cls, apk: APK, registry: LibraryRegistry) -> "AnalysisContext":
        cache = MethodAnalysisCache()
        graph = CallGraph(apk, registry, cache)
        return cls(apk, registry, graph, cache)


@dataclass
class NetworkRequest:
    """One network-request call site with its inferred context."""

    method: IRMethod
    stmt_index: int
    invoke: InvokeExpr
    library: LibraryModel
    target: TargetAPI
    chains: list[CallChain] = field(default_factory=list)
    http_method: HttpMethod = HttpMethod.ANY

    @property
    def key(self) -> MethodKey:
        return method_key(self.method)

    @property
    def loc(self) -> RequestLocation:
        """Stable identity of this request's call site."""
        return (self.key, self.stmt_index)

    @property
    def entries(self) -> list[EntryPoint]:
        seen: set[MethodKey] = set()
        result = []
        for chain in self.chains:
            if chain.entry.key not in seen:
                seen.add(chain.entry.key)
                result.append(chain.entry)
        return result

    @property
    def user_initiated(self) -> bool:
        """Reachable from an Activity lifecycle method or a UI callback."""
        return any(e.user_initiated for e in self.entries)

    @property
    def background(self) -> bool:
        """Reachable from a Service entry point."""
        return any(e.background for e in self.entries)

    @property
    def reachable(self) -> bool:
        return bool(self.chains)

    @property
    def is_post(self) -> bool:
        return self.http_method is HttpMethod.POST

    def config_local(self) -> Optional[Local]:
        """The local holding the object whose configuration matters."""
        if self.target.config_object_param is None:
            return self.invoke.base
        idx = self.target.config_object_param
        if idx < len(self.invoke.args):
            arg = self.invoke.args[idx]
            if isinstance(arg, Local):
                return arg
        return None

    def location(self) -> str:
        return f"{self.method.sig.qualified_name}:{self.stmt_index}"


def find_requests(ctx: AnalysisContext) -> list[NetworkRequest]:
    """All network requests in the app, with chains and HTTP methods."""
    requests: list[NetworkRequest] = []
    for cls in ctx.apk.classes():
        for method in cls.methods():
            for idx, invoke in method.invoke_sites():
                found = ctx.registry.find_target(invoke)
                if found is None:
                    continue
                library, target = found
                request = NetworkRequest(method, idx, invoke, library, target)
                request.chains = chains_to_method(ctx.callgraph, request.key)
                request.http_method = _infer_http_method(ctx, request)
                requests.append(request)
    return requests


def _infer_http_method(ctx: AnalysisContext, request: NetworkRequest) -> HttpMethod:
    if request.target.http_method is not HttpMethod.ANY:
        return request.target.http_method
    method = request.method
    cfg = ctx.cache.cfg(method)
    defuse = ctx.cache.defuse(method)
    lib_key = request.library.key

    if lib_key == "volley":
        return _volley_method(ctx, request, cfg, defuse)
    if lib_key == "apache":
        return _apache_method(ctx, request)
    if lib_key == "httpurlconnection":
        return _urlconnection_method(ctx, request, cfg)
    return HttpMethod.ANY


def _volley_method(ctx, request, cfg, defuse) -> HttpMethod:
    """Volley: the request object's constructor's first argument is the
    method code (Request.Method.GET=0, POST=1, ...)."""
    config = request.config_local()
    if config is None:
        return HttpMethod.ANY
    origins = trace_origins(cfg, request.stmt_index, config.name, defuse)
    constants = ctx.cache.constants(request.method)
    for origin in origins:
        if origin < 0:
            continue
        stmt = request.method.statements[origin]
        if not (isinstance(stmt, AssignStmt) and isinstance(stmt.value, NewExpr)):
            continue
        ctor = _constructor_after(request.method, origin, stmt.target)
        if ctor is None or not ctor[1].args:
            continue
        ctor_idx, ctor_invoke = ctor
        code = constants.constant_argument(ctor_idx, ctor_invoke.args[0])
        if isinstance(code, int) and code in VOLLEY_METHOD_CODES:
            return VOLLEY_METHOD_CODES[code]
    return HttpMethod.ANY


def _apache_method(ctx, request) -> HttpMethod:
    """Apache: execute(HttpPost/HttpGet/...) — classify by the request
    object's allocation class."""
    for arg in request.invoke.args:
        if not isinstance(arg, Local):
            continue
        classes = origin_classes(
            request.method, request.stmt_index, arg, ctx.cache,
            ctx.callgraph.field_types,
        )
        for cls_name in classes:
            found = _APACHE_REQUEST_CLASSES.get(cls_name)
            if found is not None:
                return found
    return HttpMethod.ANY


def _urlconnection_method(ctx, request, cfg) -> HttpMethod:
    """HttpURLConnection: look for setRequestMethod('POST') on the same
    connection object before the request."""
    receiver = request.invoke.base
    if receiver is None:
        return HttpMethod.ANY
    constants = ctx.cache.constants(request.method)
    for idx, invoke in request.method.invoke_sites():
        if invoke.sig.name != "setRequestMethod" or invoke.base != receiver:
            continue
        if not cfg.reaches(idx, request.stmt_index):
            continue
        if invoke.args:
            value = constants.constant_argument(idx, invoke.args[0])
            if isinstance(value, str):
                try:
                    return HttpMethod(value.upper())
                except ValueError:
                    return HttpMethod.ANY
    return HttpMethod.ANY


def _constructor_after(
    method: IRMethod, alloc_index: int, target
) -> Optional[tuple[int, InvokeExpr]]:
    """The ``<init>`` invoke on ``target`` following its allocation."""
    for idx in range(alloc_index + 1, len(method.statements)):
        invoke = method.statements[idx].invoke()
        if (
            invoke is not None
            and invoke.is_constructor
            and invoke.base is not None
            and invoke.base == target
        ):
            return idx, invoke
    return None
