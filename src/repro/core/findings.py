"""Findings: one detected NPD instance, carrying everything the report
generator (paper §4.6) needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..callgraph.entrypoints import MethodKey
from .defects import DefectKind, defect_info
from .requests import NetworkRequest


@dataclass
class Finding:
    """One detected network programming defect."""

    kind: DefectKind
    app: str
    method_key: MethodKey
    stmt_index: int
    message: str
    request: Optional[NetworkRequest] = None
    #: "user", "background", "both", or "unknown" (paper §4.6 item 3).
    context: str = "unknown"
    #: The defect exists only because of a library default value
    #: (Table 8's third column).
    default_caused: bool = False
    #: Free-form details for the eval harness (missing API names etc.).
    details: dict = field(default_factory=dict)

    @property
    def location(self) -> str:
        cls, name, _arity = self.method_key
        return f"{cls}.{name}:{self.stmt_index}"

    @property
    def info(self):
        return defect_info(self.kind)

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.location}: {self.message}"


def context_of(request: NetworkRequest) -> str:
    user = request.user_initiated
    background = request.background
    if user and background:
        return "both"
    if user:
        return "user"
    if background:
        return "background"
    return "unknown"
