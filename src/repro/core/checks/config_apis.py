"""Config-API analysis (paper §4.4.1, taint part).

For each request, NChecker taints the HTTP client object (or Volley's
request object) at the call site, propagates backward to the allocation
site and forward across its aliases, records every config API invoked on
tainted objects, and reports the config kinds (timeout, retry) that were
never set.  It also resolves the *values* passed to retry/timeout config
APIs via constant propagation; the improper-parameter check consumes
those.

In the default summary-based mode (``NCheckerOptions.summary_based``)
the backward propagation is genuinely interprocedural: when the config
object arrives as a parameter, the analysis climbs the caller chain —
however deep — until it reaches the frame that allocates the client, and
in every frame it additionally consults the summary engine for config
calls made inside callees the object is passed to.  The legacy mode
(``summary_based=False``, the ablation baseline) instead widens one
caller hop and treats deeper parameters as tainted throughout the
caller.  Field-held config objects widen to the enclosing class in both
modes (no heap model, matching the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...callgraph.entrypoints import MethodKey, method_key
from ...dataflow.configvalues import config_call_values
from ...dataflow.constants import ConstantPropagation
from ...dataflow.summaries import CONFIG_TOP, RECEIVER
from ...dataflow.taint import ForwardTaint, trace_origins
from ...ir.method import IRMethod
from ...ir.statements import AssignStmt
from ...ir.values import InvokeExpr, Local, NewExpr
from ...libmodels.annotations import ConfigAPI, ConfigKind
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest, RequestLocation
from ..retry_loops import RetryLoop


@dataclass
class RequestConfigInfo:
    """What configuration a request actually receives."""

    request: NetworkRequest
    satisfied: set[ConfigKind] = field(default_factory=set)
    config_sites: list[tuple[int, ConfigAPI]] = field(default_factory=list)
    #: Effective retry count: explicit constant, or the library default.
    retries: int = 0
    retries_from_default: bool = True
    #: Effective timeout (ms); None = none configured and no library default.
    timeout_ms: Optional[int] = None
    timeout_from_default: bool = True
    #: A customized retry loop wraps this request (credits MISSED_RETRY).
    custom_retry_loop: Optional[RetryLoop] = None

    @property
    def has_timeout(self) -> bool:
        return ConfigKind.TIMEOUT in self.satisfied

    @property
    def has_retry_config(self) -> bool:
        return ConfigKind.RETRY in self.satisfied


class ConfigAPICheck:
    name = "config-apis"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        names = ["requests", "callgraph"]
        if options.summary_based:
            names.append("summaries")
        if options.detect_retry_loops:
            names.append("retry-loops")
        return tuple(names)

    def __init__(self, widen_to_class: bool = True) -> None:
        self.widen_to_class = widen_to_class
        #: Populated by run(); the retry-parameter check reads it.
        self.info_by_request: dict[RequestLocation, RequestConfigInfo] = {}

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        findings: list[Finding] = []
        retry_loops = ctx.retry_loops
        for request in requests:
            info = self._collect(ctx, request)
            info.custom_retry_loop = _loop_covering(retry_loops, request)
            self.info_by_request[request.loc] = info
            findings.extend(self._findings_for(ctx, request, info))
        return findings

    # -- collection ---------------------------------------------------------

    def _collect(self, ctx: AnalysisContext, request: NetworkRequest) -> RequestConfigInfo:
        info = RequestConfigInfo(request)
        config_local = request.config_local()
        method = request.method
        if config_local is None:
            self._apply_defaults(info)
            return info
        cfg = ctx.cache.cfg(method)
        defuse = ctx.cache.defuse(method)

        # Backward step (paper: "taints the HTTP client object at the call
        # site ... performs backward propagation until reaching the call
        # site of creating the HTTP client instance").  Factory chains like
        # OkHttp's `call = client.newCall(req)` are followed through the
        # invoke's receiver back to the client allocation.
        seeds: set[tuple[int, str]] = set()
        param_names: set[str] = set()
        field_widened = False
        visited: set[tuple[int, str]] = set()
        worklist: list[tuple[int, str]] = [(request.stmt_index, config_local.name)]
        while worklist:
            at, name = worklist.pop()
            if (at, name) in visited:
                continue
            visited.add((at, name))
            for origin in trace_origins(cfg, at, name, defuse):
                if origin < 0:
                    # Parameter: the caller configured (or failed to
                    # configure) the object before passing it in.
                    seeds.add((-1, name))
                    param_names.add(name)
                    continue
                seeds.add((origin, name))
                stmt = method.statements[origin]
                assert isinstance(stmt, AssignStmt)
                value = stmt.value
                if isinstance(value, NewExpr):
                    continue  # reached the allocation: done
                if isinstance(value, InvokeExpr) and value.base is not None:
                    worklist.append((origin, value.base.name))
                else:
                    # Field load or opaque factory: the object escapes this
                    # method, so sibling methods may configure it too.
                    field_widened = True

        # Forward step: config calls on any tainted alias between the
        # definitions and the request are collected.
        taint = ForwardTaint(cfg, seeds)
        constants = ctx.cache.constants(method)
        self._scan_method(ctx, request, method, taint, constants, info)

        if param_names:
            if ctx.summaries is not None:
                self._scan_callers_transitive(ctx, request, param_names, info)
            else:
                self._scan_callers_for_params(ctx, request, param_names, info)
        if field_widened and self.widen_to_class:
            self._scan_widened(ctx, request, info)
        self._apply_defaults(info)
        return info

    def _scan_callers_transitive(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        param_names: set[str],
        info: RequestConfigInfo,
    ) -> None:
        """Summary mode: the config object arrives as a parameter, so the
        paper's backward propagation continues into the callers — through
        arbitrarily many frames — until the frame that allocates the
        client is reached.  In every frame the object's aliases are
        taint-tracked from their local definitions (or from entry, when
        the frame received it as a parameter too), and config calls on
        them are collected with the usual discipline, including — via the
        summary engine — calls made inside callees the frame passes the
        object to."""
        visited: set[tuple[MethodKey, str]] = {
            (request.key, name) for name in param_names
        }
        worklist: list[tuple[MethodKey, frozenset[str]]] = [
            (request.key, frozenset(param_names))
        ]
        while worklist:
            key, names = worklist.pop()
            callee = ctx.callgraph.methods.get(key)
            if callee is None:
                continue
            positions = {
                p.name: i for i, p in enumerate(callee.params) if p.name in names
            }
            for edge in ctx.callgraph.callers(key):
                caller = ctx.callgraph.methods.get(edge.caller)
                if caller is None:
                    continue
                site = edge.stmt_index
                invoke = caller.statements[site].invoke()
                if invoke is None:
                    continue
                caller_cfg = ctx.cache.cfg(caller)
                caller_defuse = ctx.cache.defuse(caller)
                seeds: set[tuple[int, str]] = set()
                escalate: set[str] = set()
                for position in positions.values():
                    if position >= len(invoke.args):
                        continue
                    arg = invoke.args[position]
                    if not isinstance(arg, Local):
                        continue
                    for origin in trace_origins(
                        caller_cfg, site, arg.name, caller_defuse
                    ):
                        if origin >= 0:
                            seeds.add((origin, arg.name))
                        else:
                            # The caller received it as a parameter too:
                            # track it from entry here and keep climbing.
                            seeds.add((-1, arg.name))
                            escalate.add(arg.name)
                if seeds:
                    taint = ForwardTaint(caller_cfg, seeds)
                    constants = ctx.cache.constants(caller)
                    self._scan_method(ctx, request, caller, taint, constants, info)
                fresh = {
                    name for name in escalate if (edge.caller, name) not in visited
                }
                if fresh:
                    visited.update((edge.caller, name) for name in fresh)
                    worklist.append((edge.caller, frozenset(fresh)))

    def _scan_callers_for_params(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        param_names: set[str],
        info: RequestConfigInfo,
    ) -> None:
        """Legacy (``summary_based=False``) ablation baseline: the config
        object arrives as a parameter, and only one caller level is
        inspected — deeper frames degrade to a whole-caller widening."""
        method = request.method
        param_positions = {
            p.name: i for i, p in enumerate(method.params) if p.name in param_names
        }
        for edge in ctx.callgraph.callers(request.key):
            caller = ctx.callgraph.methods.get(edge.caller)
            if caller is None:
                continue
            site = edge.stmt_index
            invoke = caller.statements[site].invoke()
            if invoke is None:
                continue
            for _name, position in param_positions.items():
                if position >= len(invoke.args):
                    continue
                arg = invoke.args[position]
                if not isinstance(arg, Local):
                    continue
                caller_cfg = ctx.cache.cfg(caller)
                caller_defuse = ctx.cache.defuse(caller)
                arg_seeds = {
                    (origin, arg.name)
                    for origin in trace_origins(caller_cfg, site, arg.name, caller_defuse)
                    if origin >= 0
                }
                if not arg_seeds:
                    # The caller received it as a parameter too (depth 2+):
                    # treat it as tainted throughout the caller.
                    arg_seeds = {(-1, arg.name)}
                taint = ForwardTaint(caller_cfg, arg_seeds)
                constants = ctx.cache.constants(caller)
                self._scan_method(ctx, request, caller, taint, constants, info)

    def _scan_method(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        method: IRMethod,
        taint: Optional[ForwardTaint],
        constants: ConstantPropagation,
        info: RequestConfigInfo,
    ) -> None:
        for idx, invoke in method.invoke_sites():
            found = ctx.registry.find_config(invoke)
            if found is None:
                if taint is not None and ctx.summaries is not None:
                    self._merge_callee_effects(
                        ctx, request, method, idx, invoke, taint, info
                    )
                continue
            lib, config = found
            if lib.key != request.library.key:
                continue
            if taint is not None and not self._touches_taint(invoke, taint, idx):
                continue
            info.config_sites.append((idx, config))
            info.satisfied.update(config.satisfies)
            self._record_values(ctx, method, idx, invoke, config, constants, info)

    def _merge_callee_effects(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        method: IRMethod,
        idx: int,
        invoke: InvokeExpr,
        taint: ForwardTaint,
        info: RequestConfigInfo,
    ) -> None:
        """Summary mode: the frame passes a tainted object into an app
        callee — fold the callee's transitive config effects into the
        request's info (the forward half of interprocedural propagation)."""
        engine = ctx.summaries
        assert engine is not None
        key = method_key(method)
        callee = engine.direct_callee_at(key, idx)
        if callee is None:
            return
        callee_method = ctx.callgraph.methods.get(callee)
        if callee_method is None:
            return
        tainted = taint.tainted_before(idx)
        positions: list[int] = []
        if (
            invoke.base is not None
            and invoke.base.name in tainted
            and not callee_method.is_static
        ):
            positions.append(RECEIVER)
        for i, arg in enumerate(invoke.args):
            if (
                isinstance(arg, Local)
                and arg.name in tainted
                and i < len(callee_method.params)
            ):
                positions.append(i)
        for pos in positions:
            effects = engine.config_effects(callee, pos)
            if effects is CONFIG_TOP:
                # Recursive cycle: assume configured (no-false-alarm ⊤).
                info.satisfied.update((ConfigKind.TIMEOUT, ConfigKind.RETRY))
                continue
            for effect in effects:
                if effect.lib_key != request.library.key:
                    continue
                info.config_sites.append((effect.stmt_index, effect.config))
                info.satisfied.update(effect.config.satisfies)
                if effect.retries is not None:
                    info.retries = effect.retries
                    info.retries_from_default = False
                if effect.timeout_ms is not None:
                    info.timeout_ms = effect.timeout_ms
                    info.timeout_from_default = False

    @staticmethod
    def _touches_taint(invoke: InvokeExpr, taint: ForwardTaint, idx: int) -> bool:
        tainted = taint.tainted_before(idx)
        if invoke.base is not None and invoke.base.name in tainted:
            return True
        return any(isinstance(a, Local) and a.name in tainted for a in invoke.args)

    def _scan_widened(
        self, ctx: AnalysisContext, request: NetworkRequest, info: RequestConfigInfo
    ) -> None:
        """Field-/parameter-held config objects: scan sibling methods of the
        class and the chain's caller frames without taint filtering."""
        scanned: set[int] = {id(request.method)}
        cls = ctx.apk.get_class(request.method.class_name)
        methods = list(cls.methods()) if cls is not None else []
        for chain in request.chains:
            for key, _site in chain.frames():
                caller = ctx.callgraph.methods.get(key)
                if caller is not None:
                    methods.append(caller)
        for method in methods:
            if id(method) in scanned:
                continue
            scanned.add(id(method))
            constants = ctx.cache.constants(method)
            self._scan_method(ctx, request, method, None, constants, info)

    def _record_values(
        self,
        ctx: AnalysisContext,
        method: IRMethod,
        idx: int,
        invoke: InvokeExpr,
        config: ConfigAPI,
        constants: ConstantPropagation,
        info: RequestConfigInfo,
    ) -> None:
        """Resolve retry counts / timeout values from config call arguments
        (constant propagation — paper §4.4.2; shared with the summary
        engine via `repro.dataflow.configvalues`)."""
        values = config_call_values(
            method, idx, invoke, config,
            ctx.cache.cfg(method), ctx.cache.defuse(method), constants,
        )
        if values.retries is not None:
            info.retries = values.retries
            info.retries_from_default = False
        if values.timeout_ms is not None:
            info.timeout_ms = values.timeout_ms
            info.timeout_from_default = False

    def _apply_defaults(self, info: RequestConfigInfo) -> None:
        defaults = info.request.library.defaults
        if info.retries_from_default:
            info.retries = defaults.retries
        if info.timeout_from_default:
            info.timeout_ms = defaults.timeout_ms

    # -- findings -------------------------------------------------------------

    def _findings_for(
        self, ctx: AnalysisContext, request: NetworkRequest, info: RequestConfigInfo
    ) -> list[Finding]:
        findings: list[Finding] = []
        library = request.library
        if library.has_timeout_api and not info.has_timeout:
            api = library.config_apis_of_kind(ConfigKind.TIMEOUT)[0]
            findings.append(
                Finding(
                    DefectKind.MISSED_TIMEOUT,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"No timeout set for {request.target.qualified} "
                    f"(call {api.method})",
                    request=request,
                    context=context_of(request),
                    details={"suggested_api": api.qualified},
                )
            )
        if (
            library.has_retry_api
            and not info.has_retry_config
            and info.custom_retry_loop is None
        ):
            api = library.config_apis_of_kind(ConfigKind.RETRY)[0]
            findings.append(
                Finding(
                    DefectKind.MISSED_RETRY,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"No retry policy set for {request.target.qualified} "
                    f"(call {api.method})",
                    request=request,
                    context=context_of(request),
                    details={"suggested_api": api.qualified},
                )
            )
        return findings


def _loop_covering(loops: list[RetryLoop], request: NetworkRequest) -> Optional[RetryLoop]:
    for loop in loops:
        if loop.method is request.method and request.stmt_index in loop.loop.body:
            return loop
        # The request's whole method may be the callee a caller loop retries.
        if request.key in loop.retried_callees:
            return loop
    return None
