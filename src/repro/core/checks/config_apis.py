"""Config-API analysis (paper §4.4.1, taint part).

For each request, NChecker taints the HTTP client object (or Volley's
request object) at the call site, propagates backward to the allocation
site and forward across its aliases, records every config API invoked on
tainted objects, and reports the config kinds (timeout, retry) that were
never set.  It also resolves the *values* passed to retry/timeout config
APIs via constant propagation; the improper-parameter check consumes
those.

When the config object is held in a field or arrives as a parameter, the
collection widens to the enclosing class and the chain's caller frames —
the pragmatic stand-in for FlowDroid's interprocedural taint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...dataflow.constants import ConstantPropagation
from ...dataflow.taint import ForwardTaint, trace_origins
from ...ir.method import IRMethod
from ...ir.statements import AssignStmt
from ...ir.values import InvokeExpr, Local, NewExpr
from ...libmodels.annotations import ConfigAPI, ConfigKind
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest
from ..retry_loops import RetryLoop


@dataclass
class RequestConfigInfo:
    """What configuration a request actually receives."""

    request: NetworkRequest
    satisfied: set[ConfigKind] = field(default_factory=set)
    config_sites: list[tuple[int, ConfigAPI]] = field(default_factory=list)
    #: Effective retry count: explicit constant, or the library default.
    retries: int = 0
    retries_from_default: bool = True
    #: Effective timeout (ms); None = none configured and no library default.
    timeout_ms: Optional[int] = None
    timeout_from_default: bool = True
    #: A customized retry loop wraps this request (credits MISSED_RETRY).
    custom_retry_loop: Optional[RetryLoop] = None

    @property
    def has_timeout(self) -> bool:
        return ConfigKind.TIMEOUT in self.satisfied

    @property
    def has_retry_config(self) -> bool:
        return ConfigKind.RETRY in self.satisfied


class ConfigAPICheck:
    name = "config-apis"

    def __init__(self, widen_to_class: bool = True) -> None:
        self.widen_to_class = widen_to_class
        #: Populated by run(); the retry-parameter check reads it.
        self.info_by_request: dict[int, RequestConfigInfo] = {}

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        findings: list[Finding] = []
        retry_loops = getattr(ctx, "retry_loops", [])
        for request in requests:
            info = self._collect(ctx, request)
            info.custom_retry_loop = _loop_covering(retry_loops, request)
            self.info_by_request[id(request)] = info
            findings.extend(self._findings_for(ctx, request, info))
        return findings

    # -- collection ---------------------------------------------------------

    def _collect(self, ctx: AnalysisContext, request: NetworkRequest) -> RequestConfigInfo:
        info = RequestConfigInfo(request)
        config_local = request.config_local()
        method = request.method
        if config_local is None:
            self._apply_defaults(info)
            return info
        cfg = ctx.cache.cfg(method)
        defuse = ctx.cache.defuse(method)

        # Backward step (paper: "taints the HTTP client object at the call
        # site ... performs backward propagation until reaching the call
        # site of creating the HTTP client instance").  Factory chains like
        # OkHttp's `call = client.newCall(req)` are followed through the
        # invoke's receiver back to the client allocation.
        seeds: set[tuple[int, str]] = set()
        param_names: set[str] = set()
        field_widened = False
        visited: set[tuple[int, str]] = set()
        worklist: list[tuple[int, str]] = [(request.stmt_index, config_local.name)]
        while worklist:
            at, name = worklist.pop()
            if (at, name) in visited:
                continue
            visited.add((at, name))
            for origin in trace_origins(cfg, at, name, defuse):
                if origin < 0:
                    # Parameter: the caller configured (or failed to
                    # configure) the object before passing it in.
                    seeds.add((-1, name))
                    param_names.add(name)
                    continue
                seeds.add((origin, name))
                stmt = method.statements[origin]
                assert isinstance(stmt, AssignStmt)
                value = stmt.value
                if isinstance(value, NewExpr):
                    continue  # reached the allocation: done
                if isinstance(value, InvokeExpr) and value.base is not None:
                    worklist.append((origin, value.base.name))
                else:
                    # Field load or opaque factory: the object escapes this
                    # method, so sibling methods may configure it too.
                    field_widened = True

        # Forward step: config calls on any tainted alias between the
        # definitions and the request are collected.
        taint = ForwardTaint(cfg, seeds)
        constants = ConstantPropagation(cfg)
        self._scan_method(ctx, request, method, taint, constants, info)

        if param_names:
            self._scan_callers_for_params(ctx, request, param_names, info)
        if field_widened and self.widen_to_class:
            self._scan_widened(ctx, request, info)
        self._apply_defaults(info)
        return info

    def _scan_callers_for_params(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        param_names: set[str],
        info: RequestConfigInfo,
    ) -> None:
        """The config object arrives as a parameter: inspect each caller's
        corresponding argument with the same taint discipline (a one-level
        stand-in for FlowDroid's interprocedural propagation)."""
        method = request.method
        param_positions = {
            p.name: i for i, p in enumerate(method.params) if p.name in param_names
        }
        for edge in ctx.callgraph.callers(request.key):
            caller = ctx.callgraph.methods.get(edge.caller)
            if caller is None:
                continue
            site = edge.stmt_index
            invoke = caller.statements[site].invoke()
            if invoke is None:
                continue
            for _name, position in param_positions.items():
                if position >= len(invoke.args):
                    continue
                arg = invoke.args[position]
                if not isinstance(arg, Local):
                    continue
                caller_cfg = ctx.cache.cfg(caller)
                caller_defuse = ctx.cache.defuse(caller)
                arg_seeds = {
                    (origin, arg.name)
                    for origin in trace_origins(caller_cfg, site, arg.name, caller_defuse)
                    if origin >= 0
                }
                if not arg_seeds:
                    # The caller received it as a parameter too (depth 2+):
                    # treat it as tainted throughout the caller.
                    arg_seeds = {(-1, arg.name)}
                taint = ForwardTaint(caller_cfg, arg_seeds)
                constants = ConstantPropagation(caller_cfg)
                self._scan_method(ctx, request, caller, taint, constants, info)

    def _scan_method(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        method: IRMethod,
        taint: Optional[ForwardTaint],
        constants: ConstantPropagation,
        info: RequestConfigInfo,
    ) -> None:
        for idx, invoke in method.invoke_sites():
            found = ctx.registry.find_config(invoke)
            if found is None:
                continue
            lib, config = found
            if lib.key != request.library.key:
                continue
            if taint is not None and not self._touches_taint(invoke, taint, idx):
                continue
            info.config_sites.append((idx, config))
            info.satisfied.update(config.satisfies)
            self._record_values(ctx, method, idx, invoke, config, constants, info)

    @staticmethod
    def _touches_taint(invoke: InvokeExpr, taint: ForwardTaint, idx: int) -> bool:
        tainted = taint.tainted_before(idx)
        if invoke.base is not None and invoke.base.name in tainted:
            return True
        return any(isinstance(a, Local) and a.name in tainted for a in invoke.args)

    def _scan_widened(
        self, ctx: AnalysisContext, request: NetworkRequest, info: RequestConfigInfo
    ) -> None:
        """Field-/parameter-held config objects: scan sibling methods of the
        class and the chain's caller frames without taint filtering."""
        scanned: set[int] = {id(request.method)}
        cls = ctx.apk.get_class(request.method.class_name)
        methods = list(cls.methods()) if cls is not None else []
        for chain in request.chains:
            for key, _site in chain.frames():
                caller = ctx.callgraph.methods.get(key)
                if caller is not None:
                    methods.append(caller)
        for method in methods:
            if id(method) in scanned:
                continue
            scanned.add(id(method))
            constants = ConstantPropagation(ctx.cache.cfg(method))
            self._scan_method(ctx, request, method, None, constants, info)

    def _record_values(
        self,
        ctx: AnalysisContext,
        method: IRMethod,
        idx: int,
        invoke: InvokeExpr,
        config: ConfigAPI,
        constants: ConstantPropagation,
        info: RequestConfigInfo,
    ) -> None:
        """Resolve retry counts / timeout values from config call arguments
        (constant propagation — paper §4.4.2)."""
        if ConfigKind.RETRY in config.satisfies:
            value = self._retry_value(ctx, method, idx, invoke, config, constants, info)
            if value is not None:
                info.retries = value
                info.retries_from_default = False
        if ConfigKind.TIMEOUT in config.satisfies and config.kind is ConfigKind.TIMEOUT:
            if config.param_index < len(invoke.args):
                value = constants.constant_argument(
                    idx, invoke.args[config.param_index]
                )
                if isinstance(value, int):
                    info.timeout_ms = value
                    info.timeout_from_default = False

    def _retry_value(
        self, ctx, method, idx, invoke, config, constants, info
    ) -> Optional[int]:
        name = invoke.sig.name
        if name in ("setMaxRetries", "setMaxRetriesAndTimeout"):
            if invoke.args:
                value = constants.constant_argument(idx, invoke.args[0])
                if isinstance(value, int):
                    return value
            return None
        if name == "setRetryOnConnectionFailure":
            if invoke.args:
                value = constants.constant_argument(idx, invoke.args[0])
                if isinstance(value, bool):
                    return 1 if value else 0
            return None
        if name == "setRetryPolicy":
            return self._policy_retries(ctx, method, idx, invoke, constants, info)
        if name == "setHttpRequestRetryHandler":
            handler = self._ctor_constant(ctx, method, idx, invoke, constants, 0)
            # Apache's DefaultHttpRequestRetryHandler() retries 3 times when
            # installed without an explicit count.
            return handler if handler is not None else 3
        return None

    def _policy_retries(self, ctx, method, idx, invoke, constants, info) -> Optional[int]:
        """Volley: setRetryPolicy(new DefaultRetryPolicy(timeout, retries,
        backoff)) — retries is ctor argument 1; the timeout (argument 0) is
        recorded on ``info`` as a side effect."""
        timeout = self._ctor_constant(ctx, method, idx, invoke, constants, 0)
        if timeout is not None:
            info.timeout_ms = timeout
            info.timeout_from_default = False
        return self._ctor_constant(ctx, method, idx, invoke, constants, 1)

    def _ctor_constant(
        self, ctx, method, idx, invoke, constants, ctor_arg_index: int
    ) -> Optional[int]:
        """Resolve argument ``ctor_arg_index`` of the constructor of the
        object passed as the config call's first argument (the
        policy/handler-object indirection both Volley and Apache use)."""
        if not invoke.args or not isinstance(invoke.args[0], Local):
            return None
        cfg = ctx.cache.cfg(method)
        defuse = ctx.cache.defuse(method)
        for origin in trace_origins(cfg, idx, invoke.args[0].name, defuse):
            if origin < 0:
                continue
            stmt = method.statements[origin]
            if not (isinstance(stmt, AssignStmt) and isinstance(stmt.value, NewExpr)):
                continue
            for ctor_idx in range(origin + 1, len(method.statements)):
                ctor = method.statements[ctor_idx].invoke()
                if (
                    ctor is not None
                    and ctor.is_constructor
                    and ctor.base == stmt.target
                ):
                    if len(ctor.args) > ctor_arg_index:
                        value = constants.constant_argument(
                            ctor_idx, ctor.args[ctor_arg_index]
                        )
                        if isinstance(value, int):
                            return value
                    break
        return None

    def _apply_defaults(self, info: RequestConfigInfo) -> None:
        defaults = info.request.library.defaults
        if info.retries_from_default:
            info.retries = defaults.retries
        if info.timeout_from_default:
            info.timeout_ms = defaults.timeout_ms

    # -- findings -------------------------------------------------------------

    def _findings_for(
        self, ctx: AnalysisContext, request: NetworkRequest, info: RequestConfigInfo
    ) -> list[Finding]:
        findings: list[Finding] = []
        library = request.library
        if library.has_timeout_api and not info.has_timeout:
            api = library.config_apis_of_kind(ConfigKind.TIMEOUT)[0]
            findings.append(
                Finding(
                    DefectKind.MISSED_TIMEOUT,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"No timeout set for {request.target.qualified} "
                    f"(call {api.method})",
                    request=request,
                    context=context_of(request),
                    details={"suggested_api": api.qualified},
                )
            )
        if (
            library.has_retry_api
            and not info.has_retry_config
            and info.custom_retry_loop is None
        ):
            api = library.config_apis_of_kind(ConfigKind.RETRY)[0]
            findings.append(
                Finding(
                    DefectKind.MISSED_RETRY,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"No retry policy set for {request.target.qualified} "
                    f"(call {api.method})",
                    request=request,
                    context=context_of(request),
                    details={"suggested_api": api.qualified},
                )
            )
        return findings


def _loop_covering(loops: list[RetryLoop], request: NetworkRequest) -> Optional[RetryLoop]:
    for loop in loops:
        if loop.method is request.method and request.stmt_index in loop.loop.body:
            return loop
        # The request's whole method may be the callee a caller loop retries.
        if request.key in loop.retried_callees:
            return loop
    return None
