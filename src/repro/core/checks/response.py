"""Invalid-response analysis (paper §4.4.4).

The response object of a request can be null or carry an error status
under network disruptions; using it without a validity check crashes the
app (paper Cause 3.3, 75 % of responses in the evaluation).  NChecker
taints the response object — the return value of a blocking target API,
or the success-callback parameter of an async one — propagates it
forward, and alarms when a CFG path connects the definition to a *use*
(a method invoked on the response or a value derived from it) without
passing a validity check: a response-check API call on a tainted alias,
or a null-test branch over one.

The path condition is computed exactly: delete the check statements from
the CFG and ask whether the use is still reachable from the definition.

When the unchecked response *escapes* to callers via return, the
checking obligation travels with it.  In summary mode
(``NCheckerOptions.summary_based``) the analysis follows the return
chain through arbitrarily many frames — a frame that validates the value
before returning it discharges the obligation; the legacy ablation mode
inspects a single caller hop.
"""

from __future__ import annotations

from typing import Optional

from ...cfg.graph import CFG
from ...dataflow.taint import ForwardTaint
from ...ir.method import IRMethod
from ...ir.statements import IfStmt, ReturnStmt
from ...ir.values import Const, Local
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest


class ResponseCheck:
    name = "invalid-response"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        names = ["requests", "callgraph"]
        if options.summary_based:
            names.append("summaries")
        return tuple(names)

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for request in requests:
            library = request.library
            if not library.has_response_check_api:
                continue
            if library.defaults.auto_response_check:
                continue  # Volley: invalid responses never reach user code
            site = self._response_site(ctx, request)
            if site is None:
                continue
            method, def_index, response_local = site
            unchecked = self._first_unchecked_use(
                ctx, method, def_index, response_local
            )
            if unchecked is None:
                # The response may *escape* to callers via return — the
                # checking obligation travels with it (transitively in
                # summary mode, one hop in the legacy ablation mode).
                unchecked = self._escaped_unchecked_use(
                    ctx, request, method, def_index, response_local
                )
            if unchecked is None:
                continue
            found_method, use_index = unchecked
            findings.append(
                Finding(
                    DefectKind.MISSED_RESPONSE_CHECK,
                    ctx.apk.package,
                    (
                        found_method.class_name,
                        found_method.name,
                        found_method.sig.arity,
                    ),
                    use_index,
                    f"Response of {request.target.qualified} used without a "
                    f"validity check (can be null/invalid under disruption)",
                    request=request,
                    context=context_of(request),
                    details={"definition_index": def_index},
                )
            )
        return findings

    def _escaped_unchecked_use(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        method: IRMethod,
        def_index: int,
        response_local: Local,
    ) -> Optional[tuple[IRMethod, int]]:
        """When the (tainted, unchecked) response is returned to a caller,
        repeat the path check on the caller's call-result local.  Summary
        mode follows the return chain transitively; intermediate frames
        that validate the value before returning it discharge the
        obligation (check-avoiding-path test), so deeper frames only
        propagate genuinely unchecked escapes."""
        transitive = ctx.summaries is not None
        visited: set[tuple[tuple[str, str, int], int, str]] = set()
        # (frame, def index, local, depth): depth 0 is the response's own
        # frame and uses the legacy escape predicate for parity.
        worklist: list[tuple[IRMethod, int, Local, int]] = [
            (method, def_index, response_local, 0)
        ]
        while worklist:
            frame, d, local, depth = worklist.pop()
            key = (frame.class_name, frame.name, frame.sig.arity)
            if (key, d, local.name) in visited:
                continue
            visited.add((key, d, local.name))
            escapes = (
                self._returns_tainted(ctx, frame, d, local)
                if depth == 0
                else self._returns_unchecked(ctx, frame, d, local)
            )
            if not escapes:
                continue
            for edge in ctx.callgraph.callers(key):
                caller = ctx.callgraph.methods.get(edge.caller)
                if caller is None:
                    continue
                stmt = caller.statements[edge.stmt_index]
                targets = stmt.defs()
                if not targets:
                    continue
                use = self._first_unchecked_use(
                    ctx, caller, edge.stmt_index, targets[0]
                )
                if use is not None:
                    return use
                if transitive:
                    worklist.append((caller, edge.stmt_index, targets[0], depth + 1))
        return None

    def _returns_tainted(
        self, ctx: AnalysisContext, method: IRMethod, def_index: int, local: Local
    ) -> bool:
        """The tainted value may reach a return statement at all."""
        cfg = ctx.cache.cfg(method)
        taint = ForwardTaint(cfg, {(def_index, local.name)})
        return any(
            isinstance(stmt, ReturnStmt)
            and isinstance(stmt.value, Local)
            and stmt.value.name in taint.tainted_before(idx)
            for idx, stmt in enumerate(method.statements)
        )

    def _returns_unchecked(
        self, ctx: AnalysisContext, method: IRMethod, def_index: int, local: Local
    ) -> bool:
        """The tainted value may reach a return statement on a path that
        avoids every validity check — the condition for propagating the
        obligation past an intermediate frame."""
        cfg = ctx.cache.cfg(method)
        taint = ForwardTaint(cfg, {(def_index, local.name)})
        check_nodes = self._check_nodes(ctx, method, taint)
        start = def_index if def_index >= 0 else cfg.entry
        reachable = self._reachable_avoiding(cfg, start, check_nodes)
        reachable.add(start)
        return any(
            isinstance(stmt, ReturnStmt)
            and isinstance(stmt.value, Local)
            and idx in reachable
            and stmt.value.name in taint.tainted_before(idx)
            for idx, stmt in enumerate(method.statements)
        )

    # ------------------------------------------------------------------

    def _response_site(
        self, ctx: AnalysisContext, request: NetworkRequest
    ) -> Optional[tuple[IRMethod, int, Local]]:
        """(method, def index, local) where the response object enters
        user code."""
        if not request.target.is_async:
            stmt = request.method.statements[request.stmt_index]
            defined = stmt.defs()
            if defined:
                return request.method, request.stmt_index, defined[0]
            return None  # response discarded: nothing to misuse
        # Async: the success callback's response parameter.
        from ...callgraph.cha import EDGE_LIB_CALLBACK
        from ...libmodels.annotations import CallbackRole

        for edge in ctx.callgraph.callees(request.key):
            if edge.stmt_index != request.stmt_index or edge.kind != EDGE_LIB_CALLBACK:
                continue
            cls = ctx.apk.get_class(edge.callee[0])
            if cls is None:
                continue
            supers = ctx.apk.hierarchy.supertypes(edge.callee[0]) | set(cls.interfaces)
            for iface in supers:
                found = ctx.registry.find_callback_spec(iface, edge.callee[1])
                if found is None:
                    continue
                _lib, spec = found
                if (
                    spec.role is CallbackRole.SUCCESS
                    and spec.response_param_index is not None
                ):
                    callback = ctx.callgraph.methods.get(edge.callee)
                    if callback is None:
                        continue
                    if spec.response_param_index < len(callback.params):
                        param = callback.params[spec.response_param_index]
                        return callback, -1, param
        return None

    def _first_unchecked_use(
        self,
        ctx: AnalysisContext,
        method: IRMethod,
        def_index: int,
        response_local: Local,
    ) -> Optional[tuple[IRMethod, int]]:
        cfg = ctx.cache.cfg(method)
        seeds = {(def_index, response_local.name)}
        taint = ForwardTaint(cfg, seeds)
        check_nodes = self._check_nodes(ctx, method, taint)
        uses = self._use_sites(ctx, method, taint, check_nodes)
        if not uses:
            return None
        if def_index < 0 and cfg.entry in uses:
            return method, cfg.entry  # parameter dereferenced immediately
        start = def_index if def_index >= 0 else cfg.entry
        reachable = self._reachable_avoiding(cfg, start, check_nodes)
        for use in sorted(uses):
            if use in reachable:
                return method, use
        return None

    def _check_nodes(
        self, ctx: AnalysisContext, method: IRMethod, taint: ForwardTaint
    ) -> set[int]:
        """Statements that validate the response: response-check API calls
        on tainted aliases, and null-tests of tainted aliases."""
        checks: set[int] = set()
        for idx, invoke in method.invoke_sites():
            if ctx.registry.find_response_check(invoke) is None:
                continue
            if (
                invoke.base is not None
                and invoke.base.name in taint.tainted_before(idx)
            ):
                checks.add(idx)
        for idx, stmt in enumerate(method.statements):
            if not isinstance(stmt, IfStmt):
                continue
            cond = stmt.condition
            operands = (cond.left, cond.right)
            has_null = any(isinstance(o, Const) and o.value is None for o in operands)
            tests_tainted = any(
                isinstance(o, Local) and o.name in taint.tainted_before(idx)
                for o in operands
            )
            if has_null and tests_tainted:
                checks.add(idx)
            elif tests_tainted and not has_null:
                # Comparing a *derived* value (status code, isSuccessful
                # result) against a constant also validates the response.
                if any(isinstance(o, Const) for o in operands):
                    checks.add(idx)
        return checks

    def _use_sites(
        self,
        ctx: AnalysisContext,
        method: IRMethod,
        taint: ForwardTaint,
        check_nodes: set[int],
    ) -> set[int]:
        """Statements that dereference the response: any method invoked on
        a tainted alias that is not itself a validity check."""
        uses: set[int] = set()
        for idx, invoke in method.invoke_sites():
            if idx in check_nodes:
                continue
            if ctx.registry.find_response_check(invoke) is not None:
                continue
            if (
                invoke.base is not None
                and invoke.base.name in taint.tainted_before(idx)
            ):
                uses.add(idx)
        return uses

    @staticmethod
    def _reachable_avoiding(cfg: CFG, start: int, blocked: set[int]) -> set[int]:
        """Nodes reachable from ``start`` on paths avoiding ``blocked``.

        A blocked start means every path from the definition begins at a
        validity check — nothing is reachable unchecked."""
        if start in blocked:
            return set()
        seen: set[int] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for succ in cfg.succs[node]:
                if succ in seen or succ in blocked:
                    if succ not in seen and succ in blocked:
                        seen.add(succ)  # the check itself is reached, not passed
                    continue
                seen.add(succ)
                frontier.append(succ)
        return seen - blocked
