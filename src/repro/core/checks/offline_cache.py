"""Offline-cache fallback analysis (extended taxonomy).

Apps that *do* check connectivity before a request frequently handle the
offline branch by doing nothing — the user gets an empty screen where a
stale copy of yesterday's data would have served.  This pass reuses the
summary engine's connectivity facts (or the legacy callers-of closure)
to find requests that are connectivity-guarded, then requires some frame
of the request's call chains to also touch a local response cache
(:data:`~repro.libmodels.android.CACHE_WRITE_APIS` /
:data:`~repro.libmodels.android.CACHE_READ_APIS` — ``LruCache``,
``SharedPreferences``): caching the successful response or reading the
cached copy back is the fallback the offline branch needs.  Guarded
requests with no cache in reach are reported.

Requests with no connectivity check at all are the connectivity check's
findings, not this pass's — flagging them here would double-report the
same root cause.
"""

from __future__ import annotations

from ...libmodels.android import is_cache_api, is_connectivity_check
from ...obs import metrics
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest
from .base import methods_invoking, request_frames


class OfflineCacheCheck:
    name = "offline-cache"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        names = ["requests", "callgraph"]
        if options.summary_based:
            names.append("summaries")
        return tuple(names)

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        registry = metrics()
        if ctx.summaries is not None:
            connectivity_methods = ctx.summaries.connectivity_methods()
        else:
            connectivity_methods = methods_invoking(ctx, is_connectivity_check)
        cache_methods = methods_invoking(ctx, is_cache_api)
        findings: list[Finding] = []
        for request in requests:
            registry.inc("check.offline_cache.sites_checked")
            frame_methods = {
                key
                for frames in request_frames(request)
                for key, _site in frames
            }
            if not frame_methods & connectivity_methods:
                continue  # unguarded: the connectivity check's finding
            if frame_methods & cache_methods:
                continue  # a cache read/write is in reach — fallback exists
            findings.append(
                Finding(
                    DefectKind.MISSED_OFFLINE_CACHE,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"Connectivity-guarded {request.target.qualified} has "
                    f"no cached-response fallback for the offline branch",
                    request=request,
                    context=context_of(request),
                    details={"guarded": True},
                )
            )
            registry.inc("check.offline_cache.findings")
        return findings
