"""Improper-API-parameter analysis (paper §4.4.2, Table 8).

With the request context (user vs. background vs. POST — §4.4.2) and the
effective retry count (explicit constant or library default — the config
analysis resolves both), three rules fire:

* **No retry for time-sensitive requests** — user-initiated request with
  zero retries (paper Cause 2.1);
* **Over-retry in Services** — background request with retries > 0
  (Cause 2.2a);
* **Over-retry on POST** — non-idempotent request with automatic retries
  (Cause 2.2b, per HTTP/1.1's MUST NOT).

Each over-retry finding records whether a library *default* caused it
(Table 8 column 3) — the paper found 76–98 % of over-retries are defaults
the developer never touched.

Additionally, customized retry loops without backoff are reported as
aggressive (the Telegram bug, Fig 2).
"""

from __future__ import annotations

from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest
from .config_apis import ConfigAPICheck, RequestConfigInfo


class RetryParameterCheck:
    name = "retry-parameters"
    #: Consumes the config check's per-request info, so it must run later
    #: in the same pipeline (when both are enabled).
    after: tuple[str, ...] = ("config-apis",)

    def reads(self, options) -> tuple[str, ...]:
        names = ["requests"]
        if options.detect_retry_loops:
            names.append("retry-loops")
        return tuple(names)

    def __init__(self, config_check: ConfigAPICheck) -> None:
        self._config_check = config_check

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for request in requests:
            info = self._config_check.info_by_request.get(request.loc)
            if info is None:
                continue
            if request.library.has_retry_api:
                findings.extend(self._parameter_findings(ctx, request, info))
        findings.extend(self._aggressive_loop_findings(ctx, requests))
        return findings

    def _parameter_findings(
        self, ctx: AnalysisContext, request: NetworkRequest, info: RequestConfigInfo
    ) -> list[Finding]:
        findings: list[Finding] = []
        retries = info.retries
        if info.custom_retry_loop is not None:
            # A hand-rolled loop supersedes the library policy for the
            # time-sensitivity rule (the app does retry).
            retries = max(retries, 1)

        # POSTs are exempt from the time-sensitivity rule: HTTP/1.1's
        # MUST-NOT-retry dominates (a user POST with 0 retries is correct).
        if request.user_initiated and retries == 0 and not request.is_post:
            findings.append(
                self._finding(
                    ctx,
                    request,
                    DefectKind.NO_RETRY_TIME_SENSITIVE,
                    "User-initiated request never retries on transient errors",
                    default_caused=info.retries_from_default,
                )
            )
        if request.background and info.retries > 0:
            findings.append(
                self._finding(
                    ctx,
                    request,
                    DefectKind.OVER_RETRY_SERVICE,
                    f"Background request retries {info.retries}x, wasting "
                    f"energy and mobile data",
                    default_caused=info.retries_from_default,
                )
            )
        if request.is_post and info.retries > 0:
            post_retried = info.retries_from_default and not (
                request.library.defaults.retries_apply_to_post
            )
            if not post_retried:  # defaults that skip POST are safe
                findings.append(
                    self._finding(
                        ctx,
                        request,
                        DefectKind.OVER_RETRY_POST,
                        f"Non-idempotent POST request auto-retries "
                        f"{info.retries}x",
                        default_caused=info.retries_from_default,
                    )
                )
        return findings

    def _aggressive_loop_findings(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        """One finding per aggressive customized retry loop (the Telegram
        shape), attributed to a covering request when one exists."""
        findings: list[Finding] = []
        for loop in ctx.retry_loops:
            if not loop.aggressive:
                continue
            covering = next(
                (
                    r
                    for r in requests
                    if (r.method is loop.method and r.stmt_index in loop.loop.body)
                    or r.key in loop.retried_callees
                ),
                None,
            )
            findings.append(
                Finding(
                    DefectKind.AGGRESSIVE_RETRY_LOOP,
                    ctx.apk.package,
                    (loop.method.class_name, loop.method.name, loop.method.sig.arity),
                    loop.loop.header,
                    "Customized retry loop reconnects without backoff "
                    f"(kind: {loop.kind})",
                    request=covering,
                    context=context_of(covering) if covering else "unknown",
                    details={"loop_header": loop.loop.header, "loop_kind": loop.kind},
                )
            )
        return findings

    def _finding(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        kind: DefectKind,
        message: str,
        default_caused: bool,
    ) -> Finding:
        return Finding(
            kind,
            ctx.apk.package,
            request.key,
            request.stmt_index,
            message + (" (library default behaviour)" if default_caused else ""),
            request=request,
            context=context_of(request),
            default_caused=default_caused,
        )
