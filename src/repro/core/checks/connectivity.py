"""Connectivity-check analysis (paper §4.4.1, control-flow part).

For each path from an entry point to a network request, NChecker checks
whether a connectivity-checking API (``getActiveNetworkInfo`` & co., or
an app helper wrapping one) is invoked on the path; requests not guarded
by any check are reported.

The default mode is **path-insensitive**, like the paper's: a check that
*precedes* the request on the path counts even if its result does not
actually guard the request.  That choice is what produced the paper's 5
known false negatives (Table 9); the ``guard_aware`` ablation flag makes
the analysis require the request to be control-dependent on a branch
derived from the check, eliminating that FN class at extra cost.

Conversely the paper's connectivity FPs come from checks performed in a
*different component* (before starting the Activity that issues the
request) — invisible without inter-component analysis.  Our corpus
injects that pattern, and this check exhibits the same FP behaviour.
"""

from __future__ import annotations

from typing import Optional

from ...callgraph.entrypoints import MethodKey
from ...dataflow.slicing import Slicer
from ...ir.values import InvokeExpr
from ...libmodels.android import is_connectivity_check
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest
from .base import methods_invoking, request_frames


class ConnectivityCheck:
    name = "connectivity"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        names = ["requests"]
        if self.interprocedural:
            names.append("callgraph")
            if options.summary_based:
                names.append("summaries")
        if options.inter_component:
            names.append("icc-model")
        return tuple(names)

    def __init__(
        self,
        guard_aware: bool = False,
        interprocedural: bool = True,
        icc_model=None,
    ) -> None:
        self.guard_aware = guard_aware
        self.interprocedural = interprocedural
        #: Optional :class:`repro.callgraph.icc.ICCModel`: when present,
        #: a connectivity check performed in a *launcher* component before
        #: starting the request's component also guards the request —
        #: closing the paper's inter-component FP class (§4.7).
        self.icc_model = icc_model

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        checker_methods: set[MethodKey] = set()
        if self.interprocedural:
            if ctx.summaries is not None:
                # Summary mode: the engine's memoized transitive fact —
                # computed once per app, shared across checks and repeat
                # scans — replaces the private callers-of fixpoint.
                checker_methods = ctx.summaries.connectivity_methods()
            else:
                checker_methods = methods_invoking(ctx, is_connectivity_check)
        findings: list[Finding] = []
        for request in requests:
            unguarded = self._unguarded_chains(ctx, request, checker_methods)
            if unguarded == 0:
                continue
            findings.append(
                Finding(
                    DefectKind.MISSED_CONNECTIVITY_CHECK,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"Missing network connectivity check before "
                    f"{request.target.qualified}",
                    request=request,
                    context=context_of(request),
                    details={"unguarded_chains": unguarded},
                )
            )
        return findings

    # ------------------------------------------------------------------

    def _unguarded_chains(
        self,
        ctx: AnalysisContext,
        request: NetworkRequest,
        checker_methods: set[MethodKey],
    ) -> int:
        """Number of entry→request chains with no connectivity check."""
        unguarded = 0
        for frames in request_frames(request):
            if not self._chain_checked(ctx, frames, checker_methods):
                unguarded += 1
        return unguarded

    def _chain_checked(
        self,
        ctx: AnalysisContext,
        frames: list[tuple[MethodKey, int]],
        checker_methods: set[MethodKey],
    ) -> bool:
        if not self.interprocedural:
            frames = frames[-1:]
        for key, site in frames:
            method = ctx.callgraph.methods.get(key)
            if method is None:
                continue
            if self._checked_in_method(ctx, method, site, checker_methods):
                return True
        if self.icc_model is not None and frames:
            return self._checked_by_launcher(ctx, frames[0][0], checker_methods)
        return False

    def _checked_by_launcher(
        self, ctx: AnalysisContext, entry_key: MethodKey, checker_methods
    ) -> bool:
        """ICC extension: a check preceding the ``startActivity`` that
        launches this component counts as guarding its requests."""
        component_class = entry_key[0]
        for site in self.icc_model.launchers_of(component_class):
            launcher = ctx.callgraph.methods.get(site.caller)
            if launcher is None:
                continue
            if self._checked_in_method(
                ctx, launcher, site.stmt_index, checker_methods
            ):
                return True
        return False

    def _checked_in_method(
        self, ctx, method, before_site: int, checker_methods: set[MethodKey]
    ) -> bool:
        cfg = ctx.cache.cfg(method)
        check_sites = []
        for idx, invoke in method.invoke_sites():
            if idx == before_site:
                continue
            if self._is_check_invoke(ctx, invoke, checker_methods):
                if cfg.reaches(idx, before_site):
                    check_sites.append(idx)
        if not check_sites:
            return False
        if not self.guard_aware:
            return True
        # Guard-aware: the call site must be control-dependent (transitively)
        # on a branch whose condition derives from a check's result.
        slicer = Slicer(cfg, ctx.cache.defuse(method))
        guard_slice = slicer.backward_slice(before_site, locals_of_interest=set())
        return any(site in guard_slice for site in check_sites)

    def _is_check_invoke(
        self, ctx, invoke: InvokeExpr, checker_methods: set[MethodKey]
    ) -> bool:
        if is_connectivity_check(invoke):
            return True
        if not self.interprocedural:
            return False
        # A call into an app helper that performs the check.
        candidates = [
            key
            for key in checker_methods
            if key[1] == invoke.sig.name and key[2] == invoke.sig.arity
        ]
        if not candidates:
            return False
        if invoke.sig.class_name == "?":
            return True
        return any(key[0] == invoke.sig.class_name for key in candidates)
