"""Failure-notification analysis (paper §4.4.3).

For user-initiated requests NChecker locates the code that runs when the
request fails — a library error callback (Volley's ``onErrorResponse``,
loopj's ``onFailure``), the AsyncTask's ``onPostExecute`` for requests
issued from ``doInBackground`` (Fig 5), or the catch blocks around a
blocking call — and scans it (and its app callees, two levels deep) for
the UI classes Android uses to surface messages.  Silence is a defect:
the user cannot tell a network failure from an empty result (Table 2(iii)).

Two extra facts are recorded per request because the evaluation reports
them (§5.2.3): whether the notification sits in an *explicit* error
callback or behind a ``Handler`` hand-off, and — for Volley, the only
studied library exposing typed errors — whether the callback inspects the
error object at all (93 % of apps do not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...callgraph.cha import EDGE_LIB_CALLBACK
from ...callgraph.entrypoints import MethodKey, method_key
from ...ir.method import IRMethod
from ...libmodels.android import (
    is_handler_notification,
    is_logging,
    is_ui_notification,
)
from ...libmodels.annotations import CallbackRole
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest, RequestLocation


@dataclass
class NotificationInfo:
    """How (and whether) one request notifies the user of failures."""

    request: NetworkRequest
    has_explicit_error_callback: bool = False
    notified: bool = False
    notified_via_handler: bool = False
    checks_error_types: bool = False
    callbacks: list[MethodKey] = None

    def __post_init__(self) -> None:
        if self.callbacks is None:
            self.callbacks = []


class NotificationCheck:
    name = "failure-notification"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        names = ["requests", "callgraph"]
        if options.summary_based:
            names.append("summaries")
        if options.inter_component:
            names.append("icc-model")
        return tuple(names)

    def __init__(self, callee_depth: int = 2, icc_model=None) -> None:
        #: Callee search depth for the *legacy* walk; in summary mode
        #: (``ctx.summaries`` set) the engine's transitive facts are used
        #: instead and this knob is ignored.
        self.callee_depth = callee_depth
        #: Optional :class:`repro.callgraph.icc.ICCModel`: when present and
        #: the app routes broadcast errors to a UI-displaying component,
        #: ``sendBroadcast`` in an error path counts as a notification —
        #: closing the paper's notification FP class (§5.3).
        self.icc_model = icc_model
        self.info_by_request: dict[RequestLocation, NotificationInfo] = {}

    def _is_broadcast_notification(self, invoke) -> bool:
        if self.icc_model is None or not self.icc_model.broadcasts_displayed:
            return False
        from ...callgraph.icc import BROADCAST_METHODS

        return invoke.sig.name in BROADCAST_METHODS

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for request in requests:
            # Error messages only help when a user awaits the result
            # (paper §4.4.3: "NChecker only checks callbacks whose
            # corresponding network requests are initiated from an
            # Activity").
            if not request.user_initiated:
                continue
            info = self._analyse(ctx, request)
            self.info_by_request[request.loc] = info
            if not info.notified:
                findings.append(
                    Finding(
                        DefectKind.MISSED_NOTIFICATION,
                        ctx.apk.package,
                        request.key,
                        request.stmt_index,
                        "No failure notification shown for user-initiated "
                        f"request {request.target.qualified}",
                        request=request,
                        context=context_of(request),
                        details={
                            "explicit_callback": info.has_explicit_error_callback
                        },
                    )
                )
            if (
                request.library.exposes_error_types
                and info.has_explicit_error_callback
                and not info.checks_error_types
            ):
                findings.append(
                    Finding(
                        DefectKind.MISSED_ERROR_TYPE_CHECK,
                        ctx.apk.package,
                        request.key,
                        request.stmt_index,
                        "Error callback ignores the error type "
                        "(NoConnectionError vs TimeoutError vs ClientError...)",
                        request=request,
                        context=context_of(request),
                    )
                )
        return findings

    # ------------------------------------------------------------------

    def _analyse(self, ctx: AnalysisContext, request: NetworkRequest) -> NotificationInfo:
        info = NotificationInfo(request)

        error_callbacks = self._error_callbacks(ctx, request)
        info.has_explicit_error_callback = bool(error_callbacks)
        info.callbacks = [k for k, _spec in error_callbacks]

        for key, spec in error_callbacks:
            method = ctx.callgraph.methods.get(key)
            if method is None:
                continue
            direct, via_handler = self._method_notifies(ctx, method)
            if direct or via_handler:
                info.notified = True
                info.notified_via_handler = via_handler and not direct
            if spec is not None and spec.error_param_index is not None:
                if self._uses_error_param(method, spec.error_param_index):
                    info.checks_error_types = True

        if not info.notified:
            # AsyncTask shape (Fig 5): doInBackground's failures surface in
            # onPostExecute; blocking calls surface in their catch blocks.
            for method in self._implicit_handlers(ctx, request):
                direct, via_handler = self._method_notifies(ctx, method)
                if direct or via_handler:
                    info.notified = True
                    info.notified_via_handler = via_handler and not direct
                    break
            else:
                direct, via_handler = self._catch_blocks_notify(ctx, request)
                if direct or via_handler:
                    info.notified = True
                    info.notified_via_handler = via_handler and not direct
        return info

    def _method_notifies(
        self, ctx: AnalysisContext, method: IRMethod
    ) -> tuple[bool, bool]:
        """(direct UI notification, Handler-mediated notification) reachable
        from ``method``: the engine's transitive facts in summary mode, the
        legacy depth-limited walk otherwise."""
        engine = ctx.summaries
        if engine is None:
            return self._search_ui(ctx, method, self.callee_depth)
        key = method_key(method)
        direct = engine.notifies_ui(key)
        if (
            not direct
            and self.icc_model is not None
            and self.icc_model.broadcasts_displayed
        ):
            direct = engine.sends_broadcast(key)
        return direct, engine.notifies_via_handler(key)

    def _error_callbacks(self, ctx: AnalysisContext, request: NetworkRequest):
        """Library error-callback methods registered at the request site."""
        found = []
        for edge in ctx.callgraph.callees(request.key):
            if edge.stmt_index != request.stmt_index or edge.kind != EDGE_LIB_CALLBACK:
                continue
            cls = ctx.apk.get_class(edge.callee[0])
            if cls is None:
                continue
            supers = ctx.apk.hierarchy.supertypes(edge.callee[0]) | set(cls.interfaces)
            for iface in supers:
                spec_found = ctx.registry.find_callback_spec(iface, edge.callee[1])
                if spec_found is None:
                    continue
                _lib, spec = spec_found
                if spec.role in (CallbackRole.ERROR, CallbackRole.COMBINED):
                    found.append((edge.callee, spec))
        return found

    def _implicit_handlers(
        self, ctx: AnalysisContext, request: NetworkRequest
    ) -> list[IRMethod]:
        """UI-thread continuations for blocking requests: the enclosing
        AsyncTask's onPostExecute/onCancelled."""
        handlers = []
        if request.method.name in ("doInBackground", "run"):
            cls = ctx.apk.get_class(request.method.class_name)
            if cls is not None:
                for name in ("onPostExecute", "onCancelled"):
                    for method_name, arity in cls.method_keys():
                        if method_name == name:
                            method = cls.get_method(method_name, arity)
                            if method is not None:
                                handlers.append(method)
        return handlers

    def _catch_blocks_notify(
        self, ctx: AnalysisContext, request: NetworkRequest
    ) -> tuple[bool, bool]:
        """Blocking call wrapped in try/catch: does a covering handler show
        a UI message?  Returns (direct UI, via Handler)."""
        method = request.method
        cfg = ctx.cache.cfg(method)
        direct = False
        via_handler = False
        for trap in method.traps_covering(request.stmt_index):
            handler = method.label_index(trap.handler)
            # Scan handler block: statements reachable from the handler
            # entry before leaving the method region (bounded scan).
            frontier, seen = [handler], {handler}
            while frontier:
                node = frontier.pop()
                invoke = (
                    method.statements[node].invoke()
                    if node < len(method.statements)
                    else None
                )
                if invoke is not None:
                    if is_ui_notification(invoke) or self._is_broadcast_notification(
                        invoke
                    ):
                        direct = True
                    elif is_handler_notification(invoke):
                        via_handler = True
                    elif ctx.summaries is not None:
                        callee = self._app_callee(ctx, invoke)
                        if callee is not None:
                            sub_direct, sub_handler = self._method_notifies(
                                ctx, callee
                            )
                            direct = direct or sub_direct
                            via_handler = via_handler or sub_handler
                    elif self.callee_depth > 0:
                        callee = self._app_callee(ctx, invoke)
                        if callee is not None:
                            sub_direct, sub_handler = self._search_ui(
                                ctx, callee, self.callee_depth - 1
                            )
                            direct = direct or sub_direct
                            via_handler = via_handler or sub_handler
                for succ in cfg.succs[node]:
                    if succ not in seen and succ != cfg.exit:
                        seen.add(succ)
                        frontier.append(succ)
        return direct, via_handler

    def _search_ui(
        self, ctx: AnalysisContext, method: IRMethod, depth: int
    ) -> tuple[bool, bool]:
        """Legacy (``summary_based=False``) walk: (direct UI notification,
        Handler-mediated notification) found in ``method`` or its app
        callees up to ``depth``."""
        direct = False
        via_handler = False
        for _idx, invoke in method.invoke_sites():
            if is_ui_notification(invoke) or self._is_broadcast_notification(invoke):
                direct = True
            elif is_handler_notification(invoke):
                via_handler = True
            elif depth > 0 and not is_logging(invoke):
                callee = self._app_callee(ctx, invoke)
                if callee is not None:
                    sub_direct, sub_handler = self._search_ui(ctx, callee, depth - 1)
                    direct = direct or sub_direct
                    via_handler = via_handler or sub_handler
        return direct, via_handler

    def _app_callee(self, ctx: AnalysisContext, invoke) -> Optional[IRMethod]:
        cls_name = invoke.sig.class_name
        if cls_name == "?":
            return None
        return ctx.apk.hierarchy.resolve_method(
            cls_name, invoke.sig.name, invoke.sig.arity
        )

    def _uses_error_param(self, method: IRMethod, param_index: int) -> bool:
        """Does the callback body read the error object at all (beyond
        receiving it)?  Matches the paper's 'refer to the object to get
        error types' criterion."""
        if param_index >= len(method.params):
            return False
        error_local = method.params[param_index]
        for stmt in method.statements:
            if error_local in stmt.uses():
                return True
        return False
