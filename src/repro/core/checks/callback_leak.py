"""Callback-lifecycle typestate analysis (extended taxonomy).

Connectivity callbacks are registered imperatively —
``Context.registerReceiver``, ``ConnectivityManager.
registerNetworkCallback`` — and leak unless the component unregisters
them on its lifecycle exit paths: a receiver registered in ``onResume``
must be released by an ``unregisterReceiver`` reachable from ``onPause``
(or ``onStop``/``onDestroy``); a Service must release in ``onDestroy``.
A leaked callback keeps firing after the component is gone, holds its
reference alive, and drains the battery on every network switch.

The pairing is a typestate over the component class: every registration
site (the :data:`~repro.libmodels.android.CALLBACK_REGISTRATION_APIS`
model) must have a matching unregistration (per
:data:`~repro.libmodels.android.UNREGISTER_FOR`) invoked somewhere in
the call-graph cone of the class's lifecycle exit methods — helper
methods count, exactly like app wrappers count for connectivity checks.
"""

from __future__ import annotations

from ...app.components import ComponentKind
from ...callgraph.entrypoints import MethodKey, method_key
from ...libmodels.android import UNREGISTER_FOR, registration_name, unregistration_name
from ...obs import metrics
from ..defects import DefectKind
from ..findings import Finding
from ..requests import AnalysisContext, NetworkRequest

#: Lifecycle methods on whose cone an unregistration counts as pairing —
#: the paths the framework guarantees to run when the component leaves
#: the foreground or dies.
EXIT_LIFECYCLE_METHODS: dict[ComponentKind, tuple[str, ...]] = {
    ComponentKind.ACTIVITY: ("onPause", "onStop", "onDestroy"),
    ComponentKind.SERVICE: ("onDestroy",),
    # Receivers and providers have no exit lifecycle: a registration
    # inside them can never be paired and is always a leak.
    ComponentKind.RECEIVER: (),
    ComponentKind.PROVIDER: (),
}


class CallbackLeakCheck:
    name = "callback-leak"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        return ("callgraph",)

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        registry = metrics()
        findings: list[Finding] = []
        for cls in ctx.apk.classes():
            kind = ctx.apk.component_kind_of(cls.name)
            if kind is None:
                continue
            released = self._released_on_exit(ctx, cls, kind)
            for method in cls.methods():
                for idx, invoke in method.invoke_sites():
                    name = registration_name(invoke)
                    if name is None:
                        continue
                    registry.inc("check.callback_leak.registrations")
                    if UNREGISTER_FOR[name] & released:
                        continue
                    key = method_key(method)
                    findings.append(
                        Finding(
                            DefectKind.CALLBACK_LEAK,
                            ctx.apk.package,
                            key,
                            idx,
                            f"{name} in {cls.name}.{method.name} has no "
                            f"pairing unregistration on any lifecycle exit "
                            f"path",
                            context="user"
                            if kind is ComponentKind.ACTIVITY
                            else "background",
                            details={
                                "registration": name,
                                "expected_unregister": sorted(
                                    UNREGISTER_FOR[name]
                                ),
                                "component_kind": kind.value,
                            },
                        )
                    )
                    registry.inc("check.callback_leak.findings")
        return findings

    def _released_on_exit(self, ctx: AnalysisContext, cls, kind) -> set[str]:
        """Unregistration method names invoked anywhere in the call-graph
        cone of the class's lifecycle exit methods."""
        graph = ctx.callgraph
        exits = EXIT_LIFECYCLE_METHODS.get(kind, ())
        cone: set[MethodKey] = set()
        for method in cls.methods():
            if method.name in exits:
                cone |= graph.reachable_from(method_key(method))
        released: set[str] = set()
        for key in cone:
            method = graph.methods.get(key)
            if method is None:
                continue
            for _idx, invoke in method.invoke_sites():
                name = unregistration_name(invoke)
                if name is not None:
                    released.add(name)
        return released
