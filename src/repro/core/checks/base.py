"""Shared infrastructure for NChecker's analyses."""

from __future__ import annotations

from collections import deque
from typing import Protocol

from ...callgraph.entrypoints import MethodKey
from ...obs import metrics
from ..findings import Finding
from ..requests import AnalysisContext, NetworkRequest


class Check(Protocol):
    """One NChecker analysis pass in the pipeline.

    Each check declares the store artifacts it reads (by name, resolved
    to typed keys by :mod:`repro.pipeline.passes`) so the scheduler can
    skip building artifacts no enabled check needs, and the passes whose
    in-scan products it consumes (``after``), so the pipeline orders
    them correctly.
    """

    name: str
    #: Pass names that must run earlier in the same scan.
    after: tuple[str, ...]

    def reads(self, options) -> tuple[str, ...]:
        """Artifact names this pass reads under ``options``."""
        ...

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]: ...


def methods_invoking(
    ctx: AnalysisContext, predicate
) -> set[MethodKey]:
    """Closure of app methods that (transitively) invoke a call site
    matching ``predicate`` — used to treat ``isNetworkOnline()``-style app
    helpers as the checks they wrap.  Legacy path: in summary mode the
    checks read the equivalent memoized fact off ``ctx.summaries``.

    The caller closure is a reverse-edge worklist seeded from the direct
    matches: each in-edge is followed at most once from its member
    endpoint (``analysis.methods_invoking.edge_visits`` counts exactly
    those visits), replacing the old whole-graph re-sweep fixpoint that
    rescanned every method's out-edges per round (O(n·e) worst case)."""
    result: set[MethodKey] = set()
    for key, method in ctx.callgraph.methods.items():
        for _idx, invoke in method.invoke_sites():
            if predicate(invoke):
                result.add(key)
                break
    # A method "performs" the action if it calls a method that does:
    # walk caller edges outward from the direct matches, once each.
    edge_visits = 0
    frontier = deque(result)
    while frontier:
        key = frontier.popleft()
        for edge in ctx.callgraph.callers(key):
            edge_visits += 1
            if edge.caller not in result:
                result.add(edge.caller)
                frontier.append(edge.caller)
    metrics().inc("analysis.methods_invoking.edge_visits", edge_visits)
    return result


def request_frames(
    request: NetworkRequest,
) -> list[list[tuple[MethodKey, int]]]:
    """Per call chain, the (method, call-site index) frames ending at the
    request statement itself."""
    frames_per_chain = []
    for chain in request.chains:
        frames = chain.frames()
        frames.append((request.key, request.stmt_index))
        frames_per_chain.append(frames)
    if not frames_per_chain:
        # Unreached requests (library callbacks we could not resolve, dead
        # code): analyse the enclosing method alone.
        frames_per_chain.append([(request.key, request.stmt_index)])
    return frames_per_chain
