"""Shared infrastructure for NChecker's analyses."""

from __future__ import annotations

from typing import Protocol

from ...callgraph.entrypoints import MethodKey
from ..findings import Finding
from ..requests import AnalysisContext, NetworkRequest


class Check(Protocol):
    """One NChecker analysis pass in the pipeline.

    Each check declares the store artifacts it reads (by name, resolved
    to typed keys by :mod:`repro.pipeline.passes`) so the scheduler can
    skip building artifacts no enabled check needs, and the passes whose
    in-scan products it consumes (``after``), so the pipeline orders
    them correctly.
    """

    name: str
    #: Pass names that must run earlier in the same scan.
    after: tuple[str, ...]

    def reads(self, options) -> tuple[str, ...]:
        """Artifact names this pass reads under ``options``."""
        ...

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]: ...


def methods_invoking(
    ctx: AnalysisContext, predicate
) -> set[MethodKey]:
    """Closure of app methods that (transitively) invoke a call site
    matching ``predicate`` — used to treat ``isNetworkOnline()``-style app
    helpers as the checks they wrap.  Legacy path: in summary mode the
    checks read the equivalent memoized fact off ``ctx.summaries``."""
    direct: set[MethodKey] = set()
    for key, method in ctx.callgraph.methods.items():
        for _idx, invoke in method.invoke_sites():
            if predicate(invoke):
                direct.add(key)
                break
    # Fixpoint over callers-of: a method "performs" the action if it calls
    # a method that does.
    result = set(direct)
    changed = True
    while changed:
        changed = False
        for key in list(ctx.callgraph.methods):
            if key in result:
                continue
            for edge in ctx.callgraph.callees(key):
                if edge.callee in result:
                    result.add(key)
                    changed = True
                    break
    return result


def request_frames(
    request: NetworkRequest,
) -> list[list[tuple[MethodKey, int]]]:
    """Per call chain, the (method, call-site index) frames ending at the
    request statement itself."""
    frames_per_chain = []
    for chain in request.chains:
        frames = chain.frames()
        frames.append((request.key, request.stmt_index))
        frames_per_chain.append(frames)
    if not frames_per_chain:
        # Unreached requests (library callbacks we could not resolve, dead
        # code): analyse the enclosing method alone.
        frames_per_chain.append([(request.key, request.stmt_index)])
    return frames_per_chain
