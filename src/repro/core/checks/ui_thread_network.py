"""UI-thread network-call analysis (extended taxonomy).

A *blocking* target API invoked from a method that may execute on the
main (UI) thread freezes the interface for the request's whole duration
and — on Android 3.0+ — crashes with ``NetworkOnMainThreadException``.
The thread-context analysis (:mod:`repro.dataflow.threadcontext`)
supplies the per-method may-run-on fact; this pass flags every blocking
request whose enclosing method may run on the main thread.

Asynchronous target APIs (``Call.enqueue``, Volley's ``queue.add``,
loopj's ``get``/``post``) are safe to *submit* from the main thread —
the library moves the transfer off-thread — and are never flagged.
"""

from __future__ import annotations

from ...obs import metrics
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest


class UiThreadNetworkCheck:
    name = "ui-thread-network"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        return ("requests", "callgraph", "threadcontext")

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        registry = metrics()
        findings: list[Finding] = []
        contexts = ctx.threadcontext
        if contexts is None:
            return findings
        for request in requests:
            registry.inc("check.ui_thread_network.sites_checked")
            if request.target.is_async:
                continue
            if not contexts.may_run_on_main(request.key):
                continue
            findings.append(
                Finding(
                    DefectKind.UI_THREAD_NETWORK,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    f"Blocking {request.target.qualified} may execute on "
                    f"the main (UI) thread",
                    request=request,
                    context=context_of(request),
                    details={"thread_context": contexts.describe(request.key)},
                )
            )
            registry.inc("check.ui_thread_network.findings")
        return findings
