"""Experimental network-switch analysis (paper Cause 4 — future work).

The paper's study found 30 % of NPDs were mishandled network switches
(Table 3), but NChecker could not check them: "there is no library APIs
related to them" (§4.2).  For connection-oriented protocols there *is* a
checkable contract, and this pass implements it for the aSmack model:

* **No reconnection on switch (Cause 4.1)** — an app holding a long-lived
  ``XMPPConnection`` must either enable the library's reconnection
  manager (``setReconnectionAllowed(true)``) or register a connectivity
  monitor (``registerReceiver`` / ``registerNetworkCallback``) so it can
  tear down the stale connection and rebuild it (the GTalkSMS bug the
  paper cites: "when the network status changes, the app still tries to
  receive data from the stale connections").

The check is off by default (``NCheckerOptions(check_network_switch=
True)`` enables it) and only examines apps that actually use a
connection-oriented library.
"""

from __future__ import annotations

from ...libmodels.asmack import (
    LONG_LIVED_CONNECTION_CLASSES,
    is_connectivity_monitor,
)
from ..defects import DefectKind
from ..findings import Finding, context_of
from ..requests import AnalysisContext, NetworkRequest


class NetworkSwitchCheck:
    name = "network-switch"
    after: tuple[str, ...] = ()

    def reads(self, options) -> tuple[str, ...]:
        return ("requests",)

    def run(
        self, ctx: AnalysisContext, requests: list[NetworkRequest]
    ) -> list[Finding]:
        connection_requests = [
            r
            for r in requests
            if r.invoke.sig.class_name in LONG_LIVED_CONNECTION_CLASSES
            or r.library.key == "asmack"
        ]
        if not connection_requests:
            return []
        if self._app_monitors_connectivity(ctx):
            return []
        if self._reconnection_enabled(ctx):
            return []
        # One finding per connect() site (the anchor of the stale-connection
        # hazard); login/send sites share the connection's fate.
        findings: list[Finding] = []
        for request in connection_requests:
            if request.invoke.sig.name != "connect":
                continue
            findings.append(
                Finding(
                    DefectKind.NO_RECONNECT_ON_SWITCH,
                    ctx.apk.package,
                    request.key,
                    request.stmt_index,
                    "Long-lived XMPP connection is never re-established on "
                    "network switches (no connectivity receiver, reconnection "
                    "manager disabled)",
                    request=request,
                    context=context_of(request),
                )
            )
        return findings

    @staticmethod
    def _app_monitors_connectivity(ctx: AnalysisContext) -> bool:
        for method in ctx.apk.methods():
            for _idx, invoke in method.invoke_sites():
                if is_connectivity_monitor(invoke):
                    return True
        return False

    @staticmethod
    def _reconnection_enabled(ctx: AnalysisContext) -> bool:
        from ...dataflow.constants import ConstantPropagation

        for method in ctx.apk.methods():
            constants = None
            for idx, invoke in method.invoke_sites():
                if invoke.sig.name != "setReconnectionAllowed":
                    continue
                if not invoke.args:
                    continue
                if constants is None:
                    constants = ctx.cache.constants(method)
                value = constants.constant_argument(idx, invoke.args[0])
                if value is True or value is None:  # unknown: assume enabled
                    return True
        return False
