"""NChecker's analyses (paper §4.4 plus the extended taxonomy checks)
as pluggable checks."""

from __future__ import annotations

from .base import Check, methods_invoking, request_frames
from .callback_leak import CallbackLeakCheck
from .config_apis import ConfigAPICheck, RequestConfigInfo
from .connectivity import ConnectivityCheck
from .notification import NotificationCheck, NotificationInfo
from .offline_cache import OfflineCacheCheck
from .response import ResponseCheck
from .retry_params import RetryParameterCheck
from .ui_thread_network import UiThreadNetworkCheck


def check_catalog(options) -> list[Check]:
    """One fresh instance of every registered check, in pipeline order —
    the source of truth for ``nchecker checks`` and mirrored by the scan
    session's pass construction.  ``options`` feeds the knobs a check's
    constructor or :meth:`~Check.reads` consults (summary mode, guard
    awareness); whether a check actually *runs* is decided by
    ``options.enabled_checks``, which the caller compares names against.
    """
    config_check = ConfigAPICheck()
    return [
        config_check,
        ConnectivityCheck(
            guard_aware=options.guard_aware_connectivity,
            interprocedural=options.interprocedural_connectivity,
        ),
        RetryParameterCheck(config_check),
        NotificationCheck(options.notification_callee_depth),
        ResponseCheck(),
        UiThreadNetworkCheck(),
        CallbackLeakCheck(),
        OfflineCacheCheck(),
    ]


__all__ = [
    "CallbackLeakCheck",
    "Check",
    "ConfigAPICheck",
    "ConnectivityCheck",
    "NotificationCheck",
    "NotificationInfo",
    "OfflineCacheCheck",
    "RequestConfigInfo",
    "ResponseCheck",
    "RetryParameterCheck",
    "UiThreadNetworkCheck",
    "check_catalog",
    "methods_invoking",
    "request_frames",
]
