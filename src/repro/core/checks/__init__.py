"""NChecker's four analyses (paper §4.4) as pluggable checks."""

from .base import Check, methods_invoking, request_frames
from .config_apis import ConfigAPICheck, RequestConfigInfo
from .connectivity import ConnectivityCheck
from .notification import NotificationCheck, NotificationInfo
from .response import ResponseCheck
from .retry_params import RetryParameterCheck

__all__ = [
    "Check",
    "ConfigAPICheck",
    "ConnectivityCheck",
    "NotificationCheck",
    "NotificationInfo",
    "RequestConfigInfo",
    "ResponseCheck",
    "RetryParameterCheck",
    "methods_invoking",
    "request_frames",
]
