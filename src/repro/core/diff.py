"""Scan diffing: what changed between two versions of an app.

Supports the patch-review workflow (`nchecker diff old.apkt new.apkt`):
which findings a change fixed, which it introduced, and which persist.
Findings are matched by (class, method, defect kind) — statement indices
shift under edits, method identity does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .checker import ScanResult
from .findings import Finding

#: Matching key: (class name, method name, kind value).
FindingKey = tuple[str, str, str]


def finding_key(finding: Finding) -> FindingKey:
    return (finding.method_key[0], finding.method_key[1], finding.kind.value)


@dataclass
class ScanDiff:
    """Findings fixed / introduced / persisting between two scans."""

    fixed: list[Finding] = field(default_factory=list)
    introduced: list[Finding] = field(default_factory=list)
    persisting: list[Finding] = field(default_factory=list)

    @property
    def is_improvement(self) -> bool:
        return bool(self.fixed) and not self.introduced

    @property
    def is_clean(self) -> bool:
        return not self.introduced and not self.persisting

    def summary(self) -> str:
        return (
            f"{len(self.fixed)} fixed, {len(self.introduced)} introduced, "
            f"{len(self.persisting)} persisting"
        )

    def render(self) -> str:
        lines = [self.summary()]
        for label, findings in (
            ("fixed", self.fixed),
            ("introduced", self.introduced),
            ("persisting", self.persisting),
        ):
            for finding in findings:
                lines.append(f"  {label:11s} {finding}")
        return "\n".join(lines)


def diff_scans(before: ScanResult, after: ScanResult) -> ScanDiff:
    """Compare two scan results (typically of the same app pre/post edit).

    Multiple findings with the same key are matched by multiplicity: two
    missed-timeout findings in one method count as fixed only when both
    disappear.
    """
    diff = ScanDiff()
    after_pool: dict[FindingKey, list[Finding]] = {}
    for finding in after.findings:
        after_pool.setdefault(finding_key(finding), []).append(finding)
    for finding in before.findings:
        bucket = after_pool.get(finding_key(finding))
        if bucket:
            diff.persisting.append(bucket.pop(0))
        else:
            diff.fixed.append(finding)
    for bucket in after_pool.values():
        diff.introduced.extend(bucket)
    return diff
