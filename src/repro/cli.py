"""Command-line interface: ``nchecker``.

Subcommands:

* ``scan <app.apkt> [...]`` — detect NPDs in app files and print §4.6
  warning reports;
* ``experiments [ids...]`` — regenerate the paper's tables/figures;
* ``corpus <dir> [--apps N]`` — emit the synthetic evaluation corpus as
  ``.apkt`` files (inspectable, re-scannable);
* ``cache stats|gc|clear`` — manage the persistent artifact cache;
* ``bench record|compare|gate`` — record performance runs into the
  append-only run ledger and gate regressions against a baseline
  (``docs/BENCHMARKS.md``);
* ``serve`` — run the scan-as-a-service HTTP daemon, including the
  ``remote:URL`` cache tier's server side (``docs/SERVICE.md``).

Every subcommand and flag is documented in ``docs/CLI.md``
(``tests/test_docs.py`` asserts the doc covers this parser, so it
cannot rot).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .app.loader import dumps_apk, load_apk
from .core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS, NChecker, NCheckerOptions
from .corpus.generator import CorpusGenerator
from .corpus.profiles import PAPER_PROFILE
from .eval.experiments import EXPERIMENTS
from .obs import get_logger

log = get_logger("cli")


def _resolve_cache_dir(args: argparse.Namespace) -> str | None:
    """The persistent-cache root a command should use: ``--no-disk-cache``
    wins, then ``--cache-dir``, then ``$NCHECKER_CACHE_DIR``, then the
    conventional ``$XDG_CACHE_HOME/nchecker`` (``~/.cache/nchecker``)."""
    if getattr(args, "no_disk_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    env = os.environ.get("NCHECKER_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "nchecker")


def _resolve_cache_backend(args: argparse.Namespace) -> str | None:
    """The ``--cache-backend`` spec a command should use (``None`` falls
    back to a plain local backend over the resolved cache dir);
    ``--no-disk-cache`` disables every tier, spec or not.

    A bad spec dies here, before any scanning starts, rather than as a
    traceback out of session construction (or, worse, out of a ``--jobs``
    worker)."""
    if getattr(args, "no_disk_cache", False):
        return None
    spec = getattr(args, "cache_backend", None)
    if spec is not None:
        from .pipeline.cachestore import backend_from_spec

        try:
            backend_from_spec(spec, local_root=_resolve_cache_dir(args))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(2)
    return spec


def _enabled_checks(args: argparse.Namespace) -> frozenset[str]:
    if getattr(args, "extended_checks", False):
        return DEFAULT_CHECKS | EXTENDED_CHECKS
    return DEFAULT_CHECKS


def _cmd_scan(args: argparse.Namespace) -> int:
    options = NCheckerOptions(
        guard_aware_connectivity=args.guard_aware,
        interprocedural_connectivity=not args.intraprocedural,
        summary_based=not args.no_summaries,
        eager_summaries=args.eager_summaries,
        intra_jobs=args.intra_jobs,
        cache_dir=_resolve_cache_dir(args),
        cache_backend=_resolve_cache_backend(args),
        enabled_checks=_enabled_checks(args),
    )
    from .pipeline.batch import BatchScanner

    # --trace / --metrics / --stats / --profile / --ledger all ride on
    # the worker telemetry round-trip; none of them touch stdout, which
    # stays byte-identical to an uninstrumented run (the table and
    # notices go to stderr).  Whenever metrics are collected the span
    # stream is folded into the profile tree too, so every --metrics
    # snapshot carries a `profile` section.
    want_trace = bool(args.trace)
    want_metrics = (
        bool(args.metrics_out) or args.stats or args.profile or args.ledger
    )

    progress = None
    if args.progress:
        def progress(done: int, total: int, payload) -> None:
            label = payload.package if payload.ok else payload.path
            log.info(
                "[%d/%d] %s: %d finding(s), %d request(s)",
                done, total, label, payload.n_findings, payload.n_requests,
            )

    scanner = BatchScanner(options=options, jobs=args.jobs)
    payloads = scanner.scan_paths(
        args.apps,
        want_json=args.json,
        want_sarif=bool(args.sarif),
        want_stats=args.stats,
        want_summary=args.summary,
        want_trace=want_trace,
        want_metrics=want_metrics,
        want_profile=want_metrics,
        progress=progress,
    )
    exit_code = 0
    json_payload = []
    sarif_kinds, sarif_results = [], []
    for payload in payloads:
        if not payload.ok:
            print(payload.error, file=sys.stderr)
            raise SystemExit(2)
        if payload.n_findings:
            exit_code = 1
        if args.sarif:
            sarif_kinds.extend(payload.sarif_kind_values)
            sarif_results.extend(payload.sarif_results)
        if args.json:
            json_payload.append(payload.json_dict)
        if args.json or args.sarif:
            continue
        print(f"== {payload.package}: {payload.n_findings} NPD(s), "
              f"{payload.n_requests} request(s) ==")
        if args.stats:
            for label, value in payload.stats_rows:
                print(f"  {label}: {value}")
        if args.summary:
            for kind, count in payload.summary_counts:
                print(f"  {kind}: {count}")
        else:
            for text in payload.report_texts:
                print(text)
                print()
    if args.json:
        import json

        print(json.dumps(json_payload, indent=2))
    if args.sarif:
        import json

        from .eval.sarif import assemble_sarif_log

        sarif_log = assemble_sarif_log(sarif_kinds, sarif_results)
        try:
            Path(args.sarif).write_text(json.dumps(sarif_log, indent=2))
        except OSError as exc:
            print(f"error: cannot write SARIF log to {args.sarif}: {exc}",
                  file=sys.stderr)
            return 2
        # Diagnostics go through the logger (stderr), so machine-readable
        # stdout (--json / --sarif) is never polluted.
        log.info("wrote SARIF log for %d app(s) to %s", len(payloads), args.sarif)
    if want_trace or want_metrics:
        code = _write_scan_telemetry(args, payloads, options)
        if code:
            return code
    return exit_code


def _write_scan_telemetry(args: argparse.Namespace, payloads, options) -> int:
    """Merge worker telemetry and surface it (--trace/--metrics/--stats/
    --profile), then append the run to the ledger when asked
    (--ledger, or $NCHECKER_LEDGER_DIR in the environment)."""
    import json

    from .obs import chrome_trace, merge_snapshots, render_telemetry

    if args.trace:
        events = [event for p in payloads for event in p.trace_events]
        try:
            Path(args.trace).write_text(json.dumps(chrome_trace(events)))
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}",
                  file=sys.stderr)
            return 2
        log.info("wrote Chrome trace (%d events) to %s", len(events), args.trace)
    merged = merge_snapshots(
        [p.metrics_snapshot for p in payloads if p.metrics_snapshot]
    )
    if args.metrics_out:
        try:
            Path(args.metrics_out).write_text(json.dumps(merged, indent=2))
        except OSError as exc:
            print(f"error: cannot write metrics to {args.metrics_out}: {exc}",
                  file=sys.stderr)
            return 2
        log.info("wrote metrics snapshot to %s", args.metrics_out)
    if args.stats:
        print(render_telemetry(merged), file=sys.stderr)
    if args.profile:
        from .obs import render_profile

        print(render_profile(merged.get("profile") or {}), file=sys.stderr)
    if merged.get("counters") and (
        args.ledger or os.environ.get("NCHECKER_LEDGER_DIR")
    ):
        from .obs import RunLedger, app_set_digest, resolve_ledger_dir, run_record

        record = run_record(
            "scan",
            options=options,
            app_set=app_set_digest(args.apps),
            snapshot=merged,
        )
        ledger = RunLedger(resolve_ledger_dir())
        try:
            ledger.append(record)
        except OSError as exc:
            # The ledger is telemetry: losing a record must not fail the
            # scan that produced perfectly good findings.
            log.warning("cannot append to run ledger %s: %s", ledger.path, exc)
        else:
            log.info("appended run %s to %s", record["run_id"], ledger.path)
    return 0


def _cmd_checks(args: argparse.Namespace) -> int:
    """List every registered check: pipeline name, whether the current
    flags enable it, and the store artifacts it reads."""
    from .core.checks import check_catalog

    options = NCheckerOptions(
        summary_based=not args.no_summaries,
        enabled_checks=_enabled_checks(args),
    )
    for check in check_catalog(options):
        state = "enabled" if check.name in options.enabled_checks else "disabled"
        reads = ", ".join(check.reads(options))
        print(f"{check.name:22s} {state:9s} reads: {reads}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    export_dir = Path(args.export) if args.export else None
    if export_dir is not None:
        export_dir.mkdir(parents=True, exist_ok=True)
    for exp_id in ids:
        report = EXPERIMENTS[exp_id]()
        print(report)
        print()
        if export_dir is not None:
            from .eval.export import export_report

            for path in export_report(report, export_dir):
                print(f"  wrote {path}")
    return 0


def _cmd_patch(args: argparse.Namespace) -> int:
    from .core.patcher import Patcher

    if args.output and len(args.apps) > 1:
        args.parser.error("-o/--output requires exactly one input app")
    checker = NChecker(
        options=NCheckerOptions(
            cache_dir=_resolve_cache_dir(args),
            cache_backend=_resolve_cache_backend(args),
        )
    )
    patcher = Patcher()
    exit_code = 0
    for path in args.apps:
        apk = _load_or_die(path)
        fixed, applied = patcher.patch_until_clean(apk, checker)
        remaining = checker.scan(fixed).findings
        out_path = Path(args.output or Path(path).with_suffix(".fixed.apkt"))
        out_path.write_text(dumps_apk(fixed))
        print(
            f"{apk.package}: applied {len(applied)} patch(es), "
            f"{len(remaining)} finding(s) remain -> {out_path}"
        )
        for patch in applied:
            print(f"  {patch}")
        if remaining:
            exit_code = 1
    return exit_code


def _cmd_diff(args: argparse.Namespace) -> int:
    from .core.diff import diff_scans

    checker = NChecker()
    before = checker.scan(_load_or_die(args.before))
    after = checker.scan(_load_or_die(args.after))
    diff = diff_scans(before, after)
    print(diff.render())
    if diff.introduced:
        return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .netsim.energy import estimate_energy
    from .netsim.runtime import Runtime
    from .netsim.scenarios import SCENARIOS

    schedule = SCENARIOS.get(args.network)
    if schedule is None:
        print(f"unknown network scenario: {args.network}", file=sys.stderr)
        print(f"available: {', '.join(SCENARIOS)}", file=sys.stderr)
        return 2
    apk = _load_or_die(args.app)
    if args.entry:
        cls_name, _, method_name = args.entry.rpartition(".")
        entries = [(cls_name, method_name)]
    else:
        from .app.components import UI_CALLBACK_METHODS

        entries = [
            (cls.name, m.name)
            for cls in apk.classes()
            for m in cls.methods()
            if m.name in UI_CALLBACK_METHODS or m.name == "onStartCommand"
        ]
    if not entries:
        print("no entry points found", file=sys.stderr)
        return 2
    exit_code = 0
    for cls_name, method_name in entries:
        runtime = Runtime(
            apk, schedule, seed=args.seed,
            invalid_response_rate=args.invalid_response_rate,
        )
        report = runtime.run_entry(cls_name, method_name)
        symptoms = []
        if report.crashed:
            symptoms.append(f"CRASH({report.crash_type})")
            exit_code = 1
        if report.silent_failure:
            symptoms.append("SILENT-FAILURE")
        if report.battery_drain:
            symptoms.append(f"BATTERY-DRAIN({report.attempts_per_minute:.0f}/min)")
        energy = estimate_energy(report)
        print(
            f"{cls_name.rsplit('.', 1)[-1]}.{method_name} on {args.network}: "
            f"{', '.join(symptoms) or 'ok'} | "
            f"requests {report.requests_succeeded}/{report.network_attempts}, "
            f"{report.sim_time_ms:.0f} ms simulated, "
            f"{energy.total_mj:.0f} mJ radio"
        )
    return exit_code


def _cmd_corpus(args: argparse.Namespace) -> int:
    out_dir = Path(args.directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    generator = CorpusGenerator(PAPER_PROFILE.scaled(args.apps))
    truths = []
    for apk, truth in generator.iter_apps():
        path = out_dir / f"{apk.package}.apkt"
        path.write_text(dumps_apk(apk))
        truths.append(truth)
    print(f"wrote {args.apps} apps to {out_dir}")
    if not args.no_ledger:
        from .corpus.groundtruth import dumps_ledger

        ledger_path = out_dir / "groundtruth.json"
        ledger_path.write_text(dumps_ledger(truths))
        print(f"wrote ground-truth ledger to {ledger_path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .pipeline.cachestore import backend_from_spec, format_size, parse_size

    spec = getattr(args, "cache_backend", None) or "local"
    try:
        backend = backend_from_spec(spec, local_root=_resolve_cache_dir(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "stats":
        print(backend.stats().render())
        return 0
    if args.action == "gc":
        try:
            max_bytes = parse_size(args.max_size)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        removed, freed = backend.gc(max_bytes, grace_seconds=args.min_age)
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}, "
              f"freed {format_size(freed)}")
        return 0
    if args.action == "clear":
        removed = backend.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    raise AssertionError(f"unknown cache action {args.action!r}")


#: Where `bench record --baseline` / `bench gate --baseline` point by
#: default — the file CI checks in and gates against (docs/BENCHMARKS.md).
DEFAULT_BASELINE = "benchmarks/bench_baseline.json"


def _bench_apps(args: argparse.Namespace) -> list[str]:
    """The app set a bench command measures: explicit paths, else the
    repository's example apps relative to the working directory."""
    apps = list(getattr(args, "apps", None) or [])
    if not apps:
        import glob

        apps = sorted(glob.glob(os.path.join("examples", "apps", "*.apkt")))
    return apps


def _bench_measure(apps, jobs: int, options, label):
    """One instrumented benchmark scan -> a ledger record.

    The persistent cache is left disabled (the options carry no cache
    dir/backend) so every counter is a pure function of (apps, options)
    — the determinism `bench compare`'s exact-match rule relies on.
    """
    import time

    from .obs import app_set_digest, merge_snapshots, run_record
    from .pipeline.batch import BatchScanner

    scanner = BatchScanner(options=options, jobs=jobs)
    start = time.perf_counter()
    payloads = scanner.scan_paths(apps, want_metrics=True, want_profile=True)
    wall_s = time.perf_counter() - start
    for payload in payloads:
        if not payload.ok:
            print(payload.error, file=sys.stderr)
            raise SystemExit(2)
    merged = merge_snapshots(
        [p.metrics_snapshot for p in payloads if p.metrics_snapshot]
    )
    return run_record(
        "bench",
        options=options,
        app_set=app_set_digest(apps),
        snapshot=merged,
        label=label,
        wall_s=wall_s,
    )


def _bench_export(record: dict) -> dict:
    """The derived BENCH export: measurements under a schema version,
    identity under a provenance block."""
    from .obs import BENCH_SCHEMA_VERSION, provenance

    export = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "provenance": provenance(record),
    }
    for key in ("wall_s", "counters", "gauges", "timings", "profile"):
        export[key] = record.get(key)
    return export


def _cmd_bench_record(args: argparse.Namespace) -> int:
    import json

    from .obs import RunLedger, resolve_ledger_dir

    apps = _bench_apps(args)
    if not apps:
        print("error: no apps given and no examples/apps/*.apkt found "
              "under the working directory", file=sys.stderr)
        return 2
    options = NCheckerOptions(
        enabled_checks=_enabled_checks(args),
        eager_summaries=args.eager_summaries,
        intra_jobs=args.intra_jobs,
    )
    record = _bench_measure(apps, args.jobs, options, args.label)
    ledger = RunLedger(resolve_ledger_dir(args.ledger_dir))
    ledger.append(record)
    print(f"recorded bench run {record['run_id']} "
          f"({record['app_set']['count']} app(s), "
          f"{record['wall_s'] * 1000:.0f} ms) -> {ledger.path}")
    export = _bench_export(record)
    for out in (args.out, args.baseline):
        if not out:
            continue
        path = Path(out)
        # `--baseline` takes an optional value, so a stray app path can
        # land here (`--baseline app.apkt ...`); never clobber a file
        # that is not already a JSON export.
        if path.exists() and path.read_text()[:1] not in ("{", ""):
            print(f"error: refusing to overwrite non-JSON file {out}",
                  file=sys.stderr)
            return 2
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        try:
            path.write_text(json.dumps(export, indent=2) + "\n")
        except OSError as exc:
            print(f"error: cannot write {out}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {out}")
    return 0


def _load_run_or_die(path: str) -> dict:
    from .obs import load_run

    try:
        return load_run(path)
    except FileNotFoundError:
        print(f"error: no such file: {path}", file=sys.stderr)
        raise SystemExit(2)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .obs import compare_runs

    base = _load_run_or_die(args.baseline)
    current = _load_run_or_die(args.current)
    result = compare_runs(base, current, args.timing_threshold,
                          args.timing_min_ms)
    print(result.render())
    return 0


def _cmd_bench_gate(args: argparse.Namespace) -> int:
    from .obs import RunLedger, compare_runs, resolve_ledger_dir

    base = _load_run_or_die(args.baseline)
    if args.current:
        current = _load_run_or_die(args.current)
    else:
        apps = _bench_apps(args)
        if not apps:
            print("error: no apps given, no --current file, and no "
                  "examples/apps/*.apkt found", file=sys.stderr)
            return 2
        options = NCheckerOptions(
        enabled_checks=_enabled_checks(args),
        eager_summaries=args.eager_summaries,
        intra_jobs=args.intra_jobs,
    )
        current = _bench_measure(apps, args.jobs, options,
                                 args.label or "gate")
        RunLedger(resolve_ledger_dir(args.ledger_dir)).append(current)
    result = compare_runs(base, current, args.timing_threshold,
                          args.timing_min_ms)
    print(result.render())
    return 0 if result.ok else 1


def _load_or_die(path: str):
    from .ir.parser import ParseError

    try:
        return load_apk(path)
    except FileNotFoundError:
        print(f"error: no such file: {path}", file=sys.stderr)
        raise SystemExit(2)
    except ParseError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except ValueError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the scan-as-a-service daemon (``docs/SERVICE.md``) in the
    foreground until interrupted."""
    import asyncio

    from .pipeline.cachestore import parse_size
    from .service import ServiceConfig, serve

    try:
        max_body = parse_size(args.max_body)
    except ValueError as exc:
        print(f"error: --max-body: {exc}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        cache_dir=_resolve_cache_dir(args),
        cache_backend=_resolve_cache_backend(args),
        extended_checks=args.extended_checks,
        intra_jobs=args.intra_jobs,
        eager_summaries=args.eager_summaries,
        max_body_bytes=max_body,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        log.info("interrupted; shutting down")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The complete ``nchecker`` argument parser.

    Exposed separately from :func:`main` so ``docs/CLI.md`` can be
    checked against it (every flag must appear in the doc) and so
    embedders can introspect the CLI surface.
    """
    parser = argparse.ArgumentParser(
        prog="nchecker",
        description="Detect network programming defects (NPDs) in "
        "Android-style app binaries (.apkt).",
    )
    # Logging verbosity rides on every subcommand (`nchecker scan -v ...`);
    # diagnostics always go to stderr, so machine output stays clean.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="suppress diagnostic messages (errors only)",
    )
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable debug diagnostics on stderr",
    )
    # The persistent artifact cache rides on every command that scans
    # (and on `cache`, which manages it).  See docs/CACHING.md.
    caching = argparse.ArgumentParser(add_help=False)
    caching.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent artifact cache location (default: "
        "$NCHECKER_CACHE_DIR, else ~/.cache/nchecker)",
    )
    caching.add_argument(
        "--cache-backend", metavar="SPEC",
        help="cache backend composition: 'local', 'memory', "
        "'remote:URL' (a `nchecker serve` daemon's shared cache), or a "
        "fastest-first '+' chain like 'memory+local' or "
        "'memory+remote:http://host:8321' (tiers read through with "
        "promotion and write through); 'local' may carry a directory "
        "as 'local:DIR', otherwise it uses the resolved --cache-dir. "
        "See docs/CACHING.md",
    )
    # Summary-engine performance knobs, shared by every command that
    # scans under the summary engine.  Neither can change scan output:
    # --intra-jobs is excluded from the scan-options fingerprint, and
    # --eager-summaries only changes work volume (ablation baseline).
    perf = argparse.ArgumentParser(add_help=False)
    perf.add_argument(
        "--intra-jobs", type=int, default=1, metavar="N",
        help="evaluate independent summary SCCs of one wavefront on N "
        "threads while prewarming (output, counters, and profile shapes "
        "are identical to --intra-jobs 1)",
    )
    perf.add_argument(
        "--eager-summaries", action="store_true",
        help="build whole-app summary fact maps on first query instead "
        "of demand-driven callee cones (ablation baseline; findings are "
        "byte-identical)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="scan app files for NPDs",
                          parents=[common, caching, perf])
    scan.add_argument("apps", nargs="+", help=".apkt files to scan")
    scan.add_argument(
        "--summary", action="store_true", help="print per-kind counts only"
    )
    scan.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    scan.add_argument(
        "--sarif", metavar="FILE",
        help="write findings as a SARIF 2.1.0 log to FILE",
    )
    scan.add_argument(
        "--no-summaries", action="store_true",
        help="disable the interprocedural summary engine (legacy "
        "horizon-limited analyses; ablation baseline)",
    )
    scan.add_argument(
        "--stats", action="store_true",
        help="also print app code metrics, plus the per-pass/per-artifact "
        "telemetry table (stderr) after the scan",
    )
    scan.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace-event JSON of the scan to FILE "
        "(open in Perfetto or chrome://tracing)",
    )
    scan.add_argument(
        "--metrics", dest="metrics_out", metavar="FILE",
        help="write the merged metrics snapshot (counters, timing "
        "histograms) as JSON to FILE",
    )
    scan.add_argument(
        "--profile", action="store_true",
        help="print the span-tree profile (per-layer self/cumulative "
        "wall time) on stderr after the scan; the tree is also embedded "
        "in the --metrics JSON under a 'profile' section",
    )
    scan.add_argument(
        "--ledger", action="store_true",
        help="append this run's telemetry to the append-only run ledger "
        "($NCHECKER_LEDGER_DIR, else ~/.local/state/nchecker; see "
        "docs/BENCHMARKS.md)",
    )
    scan.add_argument(
        "--progress", action="store_true",
        help="emit a per-app heartbeat line on stderr as results land",
    )
    scan.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="scan apps across N worker processes (output is byte-identical "
        "to --jobs 1)",
    )
    scan.add_argument(
        "--guard-aware",
        action="store_true",
        help="require connectivity checks to control-guard the request",
    )
    scan.add_argument(
        "--intraprocedural",
        action="store_true",
        help="restrict the connectivity analysis to the request's method",
    )
    scan.add_argument(
        "--no-disk-cache", action="store_true",
        help="do not read or write the persistent artifact cache "
        "(output is byte-identical either way)",
    )
    scan.add_argument(
        "--extended-checks", action="store_true",
        help="also run the extended-taxonomy checks (ui-thread-network, "
        "callback-leak, offline-cache); off by default so output matches "
        "the paper's five analyses",
    )
    scan.set_defaults(func=_cmd_scan)

    checks = sub.add_parser(
        "checks", help="list the registered checks and what each reads",
        parents=[common],
    )
    checks.add_argument(
        "--extended-checks", action="store_true",
        help="show the enabled state the scan's --extended-checks flag "
        "would produce",
    )
    checks.add_argument(
        "--no-summaries", action="store_true",
        help="show the artifacts read without the summary engine",
    )
    checks.set_defaults(func=_cmd_checks)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures",
        parents=[common],
    )
    experiments.add_argument("ids", nargs="*", help=f"subset of: {', '.join(EXPERIMENTS)}")
    experiments.add_argument(
        "--export", metavar="DIR", help="also write CSV/JSON artifacts to DIR"
    )
    experiments.set_defaults(func=_cmd_experiments)

    patch = sub.add_parser(
        "patch", help="apply fix suggestions and write a patched .apkt",
        parents=[common, caching],
    )
    patch.add_argument("apps", nargs="+", help=".apkt files to patch")
    patch.add_argument(
        "-o", "--output", help="output path (single input only; default: "
        "<input>.fixed.apkt)"
    )
    patch.add_argument(
        "--no-disk-cache", action="store_true",
        help="do not read or write the persistent artifact cache",
    )
    patch.set_defaults(func=_cmd_patch, parser=patch)

    diff = sub.add_parser(
        "diff", help="compare the findings of two app versions",
        parents=[common],
    )
    diff.add_argument("before")
    diff.add_argument("after")
    diff.set_defaults(func=_cmd_diff)

    run = sub.add_parser(
        "run", help="execute an app's entry points against a simulated network",
        parents=[common],
    )
    run.add_argument("app", help=".apkt file to run")
    run.add_argument(
        "--network", default="poor-3g",
        help="scenario name (wifi, 3g, offline, poor-3g, commute, subway, ...)",
    )
    run.add_argument("--entry", help="fully qualified Class.method (default: all)")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--invalid-response-rate", type=float, default=0.5,
        help="probability a completed request carries an HTTP error",
    )
    run.set_defaults(func=_cmd_run)

    corpus = sub.add_parser(
        "corpus", help="emit the synthetic corpus as .apkt files",
        parents=[common],
    )
    corpus.add_argument("directory")
    corpus.add_argument("--apps", type=int, default=285)
    corpus.add_argument(
        "--no-ledger", action="store_true",
        help="skip writing the groundtruth.json ledger next to the .apkt files",
    )
    corpus.set_defaults(func=_cmd_corpus)

    cache = sub.add_parser(
        "cache", help="inspect and manage the persistent artifact cache",
    )
    # The shared flags go on each action (not on `cache` itself): argparse
    # subparsers re-apply their defaults over the parent namespace, so a
    # flag accepted in both places would be silently clobbered.
    action = cache.add_subparsers(dest="action", required=True)
    action.add_parser(
        "stats", help="print entry counts and sizes per artifact kind",
        parents=[common, caching],
    )
    gc = action.add_parser(
        "gc", help="drop least-recently-used entries to fit a size budget",
        parents=[common, caching],
    )
    gc.add_argument(
        "--max-size", required=True, metavar="SIZE",
        help="target cache size, e.g. 512M, 1.5G, or a byte count",
    )
    gc.add_argument(
        "--min-age", type=float, default=60.0, metavar="SECONDS",
        help="never evict entries written within the last SECONDS "
        "(grace window protecting concurrent scanners; default 60)",
    )
    action.add_parser(
        "clear", help="delete every cache entry", parents=[common, caching]
    )
    cache.set_defaults(func=_cmd_cache)

    bench = sub.add_parser(
        "bench",
        help="record performance runs in the run ledger and gate "
        "regressions against a baseline",
    )
    bench_action = bench.add_subparsers(dest="action", required=True)

    record = bench_action.add_parser(
        "record",
        help="run an instrumented, cache-disabled benchmark scan and "
        "append it to the run ledger",
        parents=[common, perf],
    )
    record.add_argument(
        "apps", nargs="*",
        help=".apkt files to measure (default: examples/apps/*.apkt "
        "under the working directory)",
    )
    record.add_argument(
        "--label", metavar="TEXT",
        help="free-form label stored on the ledger record",
    )
    record.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="scan across N worker processes (profiles merge node-for-node)",
    )
    record.add_argument(
        "--extended-checks", action="store_true",
        help="measure with the extended-taxonomy checks enabled",
    )
    record.add_argument(
        "--ledger-dir", metavar="DIR",
        help="run-ledger location (default: $NCHECKER_LEDGER_DIR, else "
        "~/.local/state/nchecker)",
    )
    record.add_argument(
        "--out", metavar="FILE",
        help="also write the derived BENCH export (schema_version + "
        "provenance + measurements) to FILE",
    )
    record.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE, metavar="FILE",
        help="also write the export as the regression baseline "
        f"(default path: {DEFAULT_BASELINE}) — the one-command baseline "
        "refresh",
    )
    record.set_defaults(func=_cmd_bench_record)

    compare = bench_action.add_parser(
        "compare",
        help="diff two recorded runs and render the delta table",
        parents=[common],
    )
    compare.add_argument(
        "baseline", help="baseline run: ledger .jsonl (last record), "
        "ledger-entry/baseline JSON, or a scan --metrics snapshot",
    )
    compare.add_argument("current", help="current run, same formats")
    compare.add_argument(
        "--timing-threshold", type=float, default=0.2, metavar="FRACTION",
        help="relative wall-time tolerance before a timing counts as a "
        "regression (default 0.2 = ±20%%)",
    )
    compare.add_argument(
        "--timing-min-ms", type=float, default=5.0, metavar="MS",
        help="absolute noise floor: timings whose totals stay under MS "
        "never gate (default 5.0)",
    )
    compare.set_defaults(func=_cmd_bench_compare)

    gate = bench_action.add_parser(
        "gate",
        help="compare against a baseline and exit nonzero on regressions",
        parents=[common, perf],
    )
    gate.add_argument(
        "apps", nargs="*",
        help=".apkt files to measure when no --current is given "
        "(default: examples/apps/*.apkt)",
    )
    gate.add_argument(
        "--baseline", required=True, metavar="FILE",
        help="the recorded baseline to gate against",
    )
    gate.add_argument(
        "--current", metavar="FILE",
        help="gate this previously recorded run instead of measuring now",
    )
    gate.add_argument(
        "--timing-threshold", type=float, default=0.2, metavar="FRACTION",
        help="relative wall-time tolerance (default 0.2 = ±20%%)",
    )
    gate.add_argument(
        "--timing-min-ms", type=float, default=5.0, metavar="MS",
        help="absolute noise floor: timings whose totals stay under MS "
        "never gate (default 5.0)",
    )
    gate.add_argument(
        "--label", metavar="TEXT",
        help="label stored on the measured run's ledger record",
    )
    gate.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the measurement run",
    )
    gate.add_argument(
        "--extended-checks", action="store_true",
        help="measure with the extended-taxonomy checks enabled",
    )
    gate.add_argument(
        "--ledger-dir", metavar="DIR",
        help="run-ledger location for the measured run",
    )
    gate.set_defaults(func=_cmd_bench_gate)

    serve = sub.add_parser(
        "serve",
        help="run the scan-as-a-service HTTP daemon (docs/SERVICE.md)",
        parents=[common, caching, perf],
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default 127.0.0.1; use 0.0.0.0 to serve "
        "a fleet)",
    )
    serve.add_argument(
        "--port", type=int, default=8321, metavar="PORT",
        help="port to bind (default 8321; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="scan worker processes; each keeps its session cache warm "
        "across requests (default 2)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="max admitted-but-unfinished scan jobs before submissions "
        "get 503 (default 64)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="R",
        help="sustained scan submissions per second allowed per tenant "
        "(token-bucket refill rate; default 0 = unlimited)",
    )
    serve.add_argument(
        "--rate-burst", type=int, default=8, metavar="N",
        help="token-bucket capacity: burst size a tenant may submit "
        "before --rate-limit applies (default 8)",
    )
    serve.add_argument(
        "--max-body", default="16M", metavar="SIZE",
        help="largest accepted request body (413 beyond it); sizes like "
        "16M, 1.5G, or raw bytes (default 16M)",
    )
    serve.add_argument(
        "--no-disk-cache", action="store_true",
        help="serve without any persistent cache: no /v1/cache blueprint "
        "and no local tier under the workers (warm sessions only)",
    )
    serve.add_argument(
        "--extended-checks", action="store_true",
        help="run every scan with the extended-taxonomy checks enabled",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs import configure_logging

    configure_logging(getattr(args, "verbose", 0) - getattr(args, "quiet", 0))
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
