"""IR runtime: execute synthetic apps against the simulated network.

The paper classifies NPDs by the user-visible symptom they cause (Fig 4:
dysfunction, unfriendly UI, crash/freeze, battery drain).  This module
closes the loop: it *runs* an app method from our IR on a virtual clock,
routing its network-library calls through :mod:`repro.netsim.http`, and
records what a user would experience — so integration tests can show
that, e.g., a request without a response check really crashes with a
null dereference when the link is lossy, and a backoff-free reconnect
loop really spins.

Library semantics implemented:

* blocking targets raise ``SimulatedIOException`` on failure — except
  Basic HTTP, which returns null (its real API surfaces errors through
  the response object), exercising the invalid-response crash path;
* config APIs accumulate a :class:`RequestPolicy` on the client/request;
* Volley requests are asynchronous: completion fires the registered
  listener / error listener on the event loop;
* ``Thread.sleep`` advances the virtual clock;
* Toast/dialog/Handler calls are recorded as user notifications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from ..app.apk import APK
from ..ir.method import IRMethod
from ..ir.statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from ..ir.values import (
    ArrayRef,
    BinaryExpr,
    CastExpr,
    CaughtExceptionExpr,
    ConditionExpr,
    Const,
    FieldRef,
    InstanceOfExpr,
    InvokeExpr,
    LengthExpr,
    Local,
    NewArrayExpr,
    NewExpr,
    UnaryExpr,
    Value,
)
from ..libmodels import default_registry
from ..libmodels.android import (
    is_connectivity_check,
    is_handler_notification,
    is_ui_notification,
)
from ..libmodels.annotations import ConfigKind, LibraryRegistry
from .events import EventLoop
from .http import HttpClientSim, RequestPolicy, RequestResult
from .link import LinkProfile


class SimulatedIOException(Exception):
    """java.io.IOException stand-in."""

    java_type = "java.io.IOException"


class SimulatedNullPointer(Exception):
    """java.lang.NullPointerException stand-in (never an IOException, so
    ordinary catch-IOException blocks do not save the app)."""

    java_type = "java.lang.NullPointerException"


class BudgetExceeded(Exception):
    """The statement budget ran out (spinning loop)."""


@dataclass
class SimObject:
    """A heap object."""

    class_name: str
    fields: dict[str, Any] = field(default_factory=dict)
    ctor_args: tuple = ()
    policy: Optional[RequestPolicy] = None


@dataclass
class RunReport:
    """What the user experienced during one entry-point execution."""

    crashed: bool = False
    crash_type: Optional[str] = None
    notifications: int = 0
    handler_messages: int = 0
    network_attempts: int = 0
    network_failures: int = 0
    requests_succeeded: int = 0
    #: Total time the radio spent actively transmitting/waiting (ms) —
    #: the energy model's main input.
    radio_active_ms: float = 0.0
    sim_time_ms: float = 0.0
    statements_executed: int = 0
    budget_exhausted: bool = False

    @property
    def user_notified_of_failure(self) -> bool:
        return self.notifications > 0 or self.handler_messages > 0

    @property
    def silent_failure(self) -> bool:
        return (
            self.network_failures > 0
            and not self.crashed
            and not self.user_notified_of_failure
        )

    @property
    def attempts_per_minute(self) -> float:
        return 60_000.0 * self.network_attempts / max(self.sim_time_ms, 1.0)

    @property
    def battery_drain(self) -> bool:
        """The Telegram symptom: an unbounded, *rapid* stream of reconnect
        attempts.  A loop with exponential backoff also never terminates
        offline, but its attempt rate collapses, which is exactly the fix
        the paper prescribes — so rate is the discriminating metric."""
        return (
            self.budget_exhausted
            and self.network_attempts >= 25
            and self.attempts_per_minute > 3.0
        )


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _JavaThrow(Exception):
    def __init__(self, exc_type: str, payload: Any = None) -> None:
        self.exc_type = exc_type
        self.payload = payload


class Runtime:
    """Interprets app methods over the simulated network environment."""

    def __init__(
        self,
        apk: APK,
        link,
        registry: Optional[LibraryRegistry] = None,
        seed: int = 0,
        statement_budget: int = 20_000,
        request_size_bytes: int = 16 * 1024,
        invalid_response_rate: float = 0.0,
    ) -> None:
        from .link import LinkSchedule

        self.apk = apk
        self.schedule = (
            link if isinstance(link, LinkSchedule) else LinkSchedule.constant(link)
        )
        #: Probability that a *completed* request carries an HTTP error
        #: (5xx) whose body is invalid — the crash mechanism behind the
        #: paper's Cause 3.3 when the transport itself survives.
        self.invalid_response_rate = invalid_response_rate
        self.registry = registry or default_registry()
        self.rng = random.Random(seed)
        self.loop = EventLoop()
        self.report = RunReport()
        self.statement_budget = statement_budget
        self.request_size_bytes = request_size_bytes
        self._budget = statement_budget
        self._depth = 0
        #: App-frame depth cap: exceeding it raises the Java
        #: StackOverflowError (and protects the host interpreter's stack).
        self.max_call_depth = 128

    @property
    def link(self) -> LinkProfile:
        """The network the device is on at the current virtual time."""
        return self.schedule.link_at(self.loop.now)

    @property
    def network_epoch(self) -> int:
        """The current network incarnation (changes on every switch)."""
        return self.schedule.segment_index(self.loop.now)

    # -- public API -----------------------------------------------------------

    def run_entry(self, class_name: str, method_name: str) -> RunReport:
        """Execute one entry point to completion (plus any async work)."""
        cls = self.apk.get_class(class_name)
        if cls is None:
            raise KeyError(f"no class {class_name}")
        method = next(
            (m for m in cls.methods() if m.name == method_name), None
        )
        if method is None:
            raise KeyError(f"no method {class_name}.{method_name}")
        receiver = SimObject(class_name)
        args = [SimObject("android.stub.Arg") for _ in method.params]
        try:
            self.invoke_method(method, receiver, args)
            self.loop.run(max_events=1000)
        except _JavaThrow as exc:
            self.report.crashed = True
            self.report.crash_type = exc.exc_type
        except BudgetExceeded:
            self.report.budget_exhausted = True
        self.report.sim_time_ms = self.loop.now
        self.report.statements_executed = self.statement_budget - self._budget
        return self.report

    # -- interpretation ---------------------------------------------------------

    def invoke_method(
        self, method: IRMethod, receiver: Any, args: list[Any]
    ) -> Any:
        self._depth += 1
        try:
            if self._depth > self.max_call_depth:
                raise _JavaThrow("java.lang.StackOverflowError")
            return self._invoke_method_body(method, receiver, args)
        finally:
            self._depth -= 1

    def _invoke_method_body(
        self, method: IRMethod, receiver: Any, args: list[Any]
    ) -> Any:
        env: dict[str, Any] = {"this": receiver}
        for param, value in zip(method.params, args):
            env[param.name] = value
        pc = 0
        statements = method.statements
        while True:
            if self._budget <= 0:
                raise BudgetExceeded()
            self._budget -= 1
            if pc >= len(statements):
                return None
            stmt = statements[pc]
            try:
                next_pc = self._step(method, env, pc, stmt)
            except _Return as ret:
                return ret.value
            except _JavaThrow as exc:
                handler = self._find_handler(method, pc, exc.exc_type)
                if handler is None:
                    raise
                env["@caught"] = exc
                next_pc = handler
            pc = next_pc

    def _step(self, method: IRMethod, env: dict, pc: int, stmt: Stmt) -> int:
        if isinstance(stmt, NopStmt):
            return pc + 1
        if isinstance(stmt, GotoStmt):
            return method.label_index(stmt.target)
        if isinstance(stmt, ReturnStmt):
            value = self._eval(env, stmt.value) if stmt.value is not None else None
            raise _Return(value)
        if isinstance(stmt, ThrowStmt):
            payload = self._eval(env, stmt.value)
            exc_type = (
                payload.class_name if isinstance(payload, SimObject) else
                "java.lang.Exception"
            )
            raise _JavaThrow(exc_type, payload)
        if isinstance(stmt, IfStmt):
            if self._truth(env, stmt.condition):
                return method.label_index(stmt.target)
            return pc + 1
        if isinstance(stmt, InvokeStmt):
            self._invoke(method, env, stmt.expr)
            return pc + 1
        if isinstance(stmt, AssignStmt):
            self._assign(method, env, stmt)
            return pc + 1
        raise TypeError(f"cannot interpret {stmt!r}")

    def _assign(self, method: IRMethod, env: dict, stmt: AssignStmt) -> None:
        value = stmt.value
        if isinstance(value, CaughtExceptionExpr):
            result = env.get("@caught")
        elif isinstance(value, InvokeExpr):
            result = self._invoke(method, env, value)
        else:
            result = self._eval(env, value)
        target = stmt.target
        if isinstance(target, Local):
            env[target.name] = result
        elif isinstance(target, FieldRef):
            base = self._eval(env, target.base) if target.base else None
            if isinstance(base, SimObject):
                base.fields[target.sig.name] = result
        elif isinstance(target, ArrayRef):
            base = env.get(target.base.name)
            index = self._eval(env, target.index)
            if isinstance(base, list) and isinstance(index, int):
                base[index] = result

    def _eval(self, env: dict, value: Optional[Value]) -> Any:
        if value is None:
            return None
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Local):
            return env.get(value.name)
        if isinstance(value, NewExpr):
            return SimObject(value.class_name)
        if isinstance(value, NewArrayExpr):
            size = self._eval(env, value.size)
            return [None] * int(size or 0)
        if isinstance(value, FieldRef):
            base = self._eval(env, value.base) if value.base else None
            if base is None and value.base is not None:
                raise _JavaThrow(SimulatedNullPointer.java_type)
            if isinstance(base, SimObject):
                return base.fields.get(value.sig.name)
            return None
        if isinstance(value, ArrayRef):
            base = env.get(value.base.name)
            index = self._eval(env, value.index)
            if isinstance(base, list):
                return base[int(index or 0)]
            return None
        if isinstance(value, BinaryExpr):
            return _binop(
                value.op, self._eval(env, value.left), self._eval(env, value.right)
            )
        if isinstance(value, UnaryExpr):
            operand = self._eval(env, value.operand)
            return -operand if value.op == "neg" else not operand
        if isinstance(value, CastExpr):
            return self._eval(env, value.value)
        if isinstance(value, InstanceOfExpr):
            inner = self._eval(env, value.value)
            return (
                isinstance(inner, SimObject)
                and self.apk.hierarchy.is_subtype(inner.class_name, value.type_name)
            )
        if isinstance(value, LengthExpr):
            inner = self._eval(env, value.value)
            return len(inner) if isinstance(inner, list) else 0
        if isinstance(value, CaughtExceptionExpr):
            return env.get("@caught")
        raise TypeError(f"cannot evaluate {value!r}")

    def _truth(self, env: dict, cond: ConditionExpr) -> bool:
        left = self._eval(env, cond.left)
        right = self._eval(env, cond.right)
        if cond.op == "==":
            if isinstance(left, SimObject) or isinstance(right, SimObject):
                return left is right
            return left == right
        if cond.op == "!=":
            return not self._truth(env, ConditionExpr("==", cond.left, cond.right))
        try:
            if cond.op == "<":
                return left < right
            if cond.op == "<=":
                return left <= right
            if cond.op == ">":
                return left > right
            if cond.op == ">=":
                return left >= right
        except TypeError:
            return False
        raise ValueError(f"unknown condition {cond.op}")

    def _find_handler(self, method: IRMethod, pc: int, exc_type: str) -> Optional[int]:
        for trap in method.traps_covering(pc):
            if _catches(trap.exc_type, exc_type):
                return method.label_index(trap.handler)
        return None

    # -- invocation dispatch -----------------------------------------------------

    def _invoke(self, method: IRMethod, env: dict, expr: InvokeExpr) -> Any:
        base = self._eval(env, expr.base) if expr.base is not None else None
        args = [self._eval(env, a) for a in expr.args]
        name = expr.sig.name

        # Null receiver on an instance call: NullPointerException — the
        # missed-response-check crash (paper Cause 3.3).
        if expr.base is not None and base is None and not expr.is_constructor:
            raise _JavaThrow(SimulatedNullPointer.java_type)

        # Response-object semantics: validity checks read the status;
        # reading the *body* of an HTTP-error response blows up downstream
        # (the invalid-payload parse crash of Cause 3.3).
        if isinstance(base, SimObject) and "status" in base.fields:
            status = base.fields["status"]
            if self.registry.find_response_check(expr) is not None:
                return status if name == "getStatus" else status < 400
            if (
                status >= 400
                and base.fields.get("fragile")
                and name not in ("toString",)
            ):
                raise _JavaThrow(SimulatedNullPointer.java_type)

        # Constructors: remember arguments (listeners, policy values).
        if expr.is_constructor:
            if isinstance(base, SimObject):
                base.ctor_args = tuple(args)
            return None

        # App-defined methods: interpret recursively.
        app_method = self._resolve_app_method(method, expr, base)
        if app_method is not None:
            return self.invoke_method(app_method, base, args)

        # Android async dispatch: task.execute() runs doInBackground and
        # hands its result to onPostExecute; thread.start()/handler.post(r)
        # run the runnable.
        dispatched = self._dispatch_android_async(expr, base, args)
        if dispatched is not _UNHANDLED:
            return dispatched

        # Android framework bits.
        if is_connectivity_check(expr):
            if name in ("getActiveNetworkInfo", "getNetworkInfo"):
                return SimObject("android.net.NetworkInfo") if self.link.connected else None
            return self.link.connected
        if is_ui_notification(expr):
            if name != "makeText":  # showing, not constructing
                self.report.notifications += 1
            return SimObject(expr.sig.class_name)
        if is_handler_notification(expr):
            self.report.handler_messages += 1
            return None
        if expr.sig.class_name == "java.lang.Thread" and name == "sleep":
            delay = args[0] if isinstance(args[0], (int, float)) else 0
            # Clamp runaway backoff values (2^n ms grows past float range
            # long before the statement budget runs out).
            self.loop.advance(float(min(delay, 3_600_000)))
            return None
        if name == "random" and expr.sig.class_name == "java.lang.Math":
            # The corpus uses Math.random() as a shouldRetry() stand-in.
            return self.rng.random() < 0.5

        # Network library APIs.
        result = self._library_call(expr, base, args)
        if result is not _UNHANDLED:
            return result

        # Unknown library call: return an opaque object.  Objects derived
        # from a configured client (OkHttp's `client.newCall(...)`) carry
        # the client's policy forward.
        opaque = SimObject(f"opaque.{expr.sig.class_name}.{name}")
        if isinstance(base, SimObject) and base.policy is not None:
            opaque.policy = base.policy
        return opaque

    def _dispatch_android_async(self, expr: InvokeExpr, base: Any, args: list[Any]):
        """AsyncTask / Thread / Handler semantics, executed on the virtual
        clock (synchronously in program order — single-threaded model)."""
        from ..app.components import (
            ASYNC_TASK_EXECUTE_METHODS,
            HANDLER_POST_METHODS,
            THREAD_START_METHODS,
        )

        name = expr.sig.name
        if (
            name in ASYNC_TASK_EXECUTE_METHODS
            and isinstance(base, SimObject)
        ):
            cls = self.apk.get_class(base.class_name)
            if cls is not None:
                background = next(
                    (m for m in cls.methods() if m.name == "doInBackground"), None
                )
                if background is not None:
                    result = self.invoke_method(
                        background, base, [None] * len(background.params)
                    )
                    post = next(
                        (m for m in cls.methods() if m.name == "onPostExecute"), None
                    )
                    if post is not None:
                        call_args = [result] * len(post.params)
                        self.loop.schedule(
                            0.0,
                            lambda: self.invoke_method(post, base, call_args),
                        )
                    return None
        if name in THREAD_START_METHODS or name in HANDLER_POST_METHODS:
            candidates = [base] if name in THREAD_START_METHODS else []
            candidates.extend(a for a in args if isinstance(a, SimObject))
            for candidate in candidates:
                if not isinstance(candidate, SimObject):
                    continue
                cls = self.apk.get_class(candidate.class_name)
                if cls is None:
                    continue
                run = cls.get_method("run", 0)
                if run is not None:
                    self.loop.schedule(
                        0.0, lambda r=run, c=candidate: self.invoke_method(r, c, [])
                    )
                    return None
        return _UNHANDLED

    def _resolve_app_method(
        self, caller: IRMethod, expr: InvokeExpr, base: Any
    ) -> Optional[IRMethod]:
        cls_name = expr.sig.class_name
        if cls_name == "?" and isinstance(base, SimObject):
            cls_name = base.class_name
        if cls_name == "?" and expr.base is not None and expr.base.name == "this":
            cls_name = caller.class_name
        if cls_name not in self.apk.hierarchy:
            return None
        return self.apk.hierarchy.resolve_method(
            cls_name, expr.sig.name, expr.sig.arity
        )

    # -- network library semantics -------------------------------------------------

    def _library_call(self, expr: InvokeExpr, base: Any, args: list[Any]) -> Any:
        config = self.registry.find_config(expr)
        if config is not None and isinstance(base, SimObject):
            self._apply_config(base, config[1], args)
            return None
        if config is not None and base is None:
            # Static config (Apache HttpConnectionParams): attach to the
            # params object argument.
            for arg in args:
                if isinstance(arg, SimObject):
                    self._apply_config(arg, config[1], args[1:])
                    break
            return None

        target = self.registry.find_target(expr)
        if target is not None:
            return self._perform_request(expr, target[0], target[1], base, args)
        return _UNHANDLED

    def _apply_config(self, obj: SimObject, config, args: list[Any]) -> None:
        policy = obj.policy or RequestPolicy(timeout_ms=None, max_retries=0)
        if ConfigKind.TIMEOUT in config.satisfies:
            value = args[config.param_index] if config.param_index < len(args) else None
            if isinstance(value, (int, float)):
                policy = RequestPolicy(
                    float(value), policy.max_retries, policy.backoff_multiplier
                )
        if ConfigKind.RETRY in config.satisfies:
            retries = None
            value = args[0] if args else None
            if isinstance(value, bool):
                retries = 1 if value else 0
            elif isinstance(value, (int, float)):
                retries = int(value)
            elif isinstance(value, SimObject) and value.ctor_args:
                # Retry policy object: (timeout, retries, backoff).
                ctor = value.ctor_args
                if len(ctor) >= 1 and isinstance(ctor[0], (int, float)):
                    policy = RequestPolicy(
                        float(ctor[0]), policy.max_retries, policy.backoff_multiplier
                    )
                if len(ctor) >= 2 and isinstance(ctor[1], (int, float)):
                    retries = int(ctor[1])
            if retries is not None:
                policy = RequestPolicy(
                    policy.timeout_ms, retries, policy.backoff_multiplier
                )
        obj.policy = policy

    def _effective_policy(self, library, config_obj: Any) -> RequestPolicy:
        if isinstance(config_obj, SimObject) and config_obj.policy is not None:
            base = config_obj.policy
            timeout = base.timeout_ms
            if timeout is None:
                timeout = library.defaults.timeout_ms
            return RequestPolicy(
                timeout, base.max_retries, library.defaults.backoff_multiplier
            )
        return RequestPolicy.from_defaults(library.defaults)

    def _perform_request(self, expr, library, target, base, args: list[Any]) -> Any:
        config_obj = base
        if target.config_object_param is not None and target.config_object_param < len(args):
            config_obj = args[target.config_object_param]
        policy = self._effective_policy(library, config_obj)

        # Long-lived connections (XMPP): operations on a connection
        # established before a network switch hit a *stale* socket (paper
        # Cause 4.1).  Apps that enabled the reconnection manager recover
        # transparently; others get an IOException.
        if library.key == "asmack" and isinstance(base, SimObject):
            if expr.sig.name == "connect":
                pass  # establishing (or re-establishing) is always allowed
            else:
                epoch = base.fields.get("_epoch")
                if epoch is not None and epoch != self.network_epoch:
                    if policy.max_retries > 0 and self.link.connected:
                        base.fields["_epoch"] = self.network_epoch  # auto-reconnect
                        self.report.network_attempts += 1
                        self.loop.advance(self.link.rtt_ms)
                    else:
                        self.report.network_failures += 1
                        raise _JavaThrow(SimulatedIOException.java_type)
        client = HttpClientSim(policy, self.rng)
        result = client.request(self.link, self.request_size_bytes)
        self.report.network_attempts += result.attempts
        self.report.radio_active_ms += result.total_ms
        self.loop.advance(result.total_ms)
        if result.success:
            self.report.requests_succeeded += 1
            if library.key == "asmack" and isinstance(base, SimObject):
                base.fields["_epoch"] = self.network_epoch
        else:
            self.report.network_failures += 1

        # HTTP-level errors on an otherwise-successful transport: each
        # library surfaces them differently (the Table 4 ⋆/© distinction
        # for invalid responses, executed).
        http_error = result.success and self.rng.random() < self.invalid_response_rate

        if target.is_async:
            if http_error:
                # Volley/loopj deliver error statuses to the error callback.
                result = RequestResult(False, result.total_ms, result.attempts, "http-error")
                self.report.requests_succeeded -= 1
                self.report.network_failures += 1
            self._dispatch_async(library, target, config_obj, args, result)
            return None
        if result.success:
            if http_error and library.key == "httpurlconnection":
                # getInputStream() throws on HTTP error statuses.
                self.report.network_failures += 1
                raise _JavaThrow(SimulatedIOException.java_type)
            status = 500 if http_error else 200
            return SimObject(
                f"{library.key}.Response",
                fields={
                    "status": status,
                    # Only the libraries whose responses must be manually
                    # validity-checked hand fragile bodies to user code.
                    "fragile": library.key in ("okhttp", "basichttp"),
                },
            )
        if library.key == "basichttp" and result.failure != "offline":
            # Basic HTTP surfaces mid-transfer failures as a null/invalid
            # response object; only connection-level failures throw.
            return None
        raise _JavaThrow(SimulatedIOException.java_type)

    def _dispatch_async(self, library, target, config_obj, args, result: RequestResult) -> None:
        """Schedule the success/error callback on the registered listener."""
        listeners: list[SimObject] = []
        for arg in args:
            if isinstance(arg, SimObject):
                listeners.append(arg)
                listeners.extend(
                    a for a in arg.ctor_args if isinstance(a, SimObject)
                )
        for listener in listeners:
            cls = self.apk.get_class(listener.class_name)
            if cls is None:
                continue
            supers = self.apk.hierarchy.supertypes(listener.class_name) | set(
                cls.interfaces
            )
            for iface in supers:
                for (reg_iface, reg_name), (lib, spec) in list(
                    self.registry._callback_methods.items()
                ):
                    if reg_iface != iface:
                        continue
                    from ..libmodels.annotations import CallbackRole

                    want_error = not result.success
                    is_error_cb = spec.role is CallbackRole.ERROR
                    if want_error != is_error_cb:
                        continue
                    callback = next(
                        (m for m in cls.methods() if m.name == reg_name), None
                    )
                    if callback is None:
                        continue
                    payload = (
                        SimObject("com.android.volley.NoConnectionError")
                        if want_error
                        else SimObject(f"{library.key}.Response")
                    )
                    call_args = [payload] * len(callback.params)
                    self.loop.schedule(
                        0.0,
                        lambda cb=callback, l=listener, a=call_args: self.invoke_method(
                            cb, l, a
                        ),
                    )


_UNHANDLED = object()


def _binop(op: str, left: Any, right: Any) -> Any:
    left = 0 if left is None else left
    right = 0 if right is None else right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left // right if isinstance(left, int) and isinstance(right, int) else left / right
    if op == "%":
        return left % right
    if op == "cmp":
        return (left > right) - (left < right)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    raise ValueError(f"unknown operator {op}")


_EXCEPTION_HIERARCHY = {
    "java.io.IOException": ("java.lang.Exception", "java.lang.Throwable"),
    "java.lang.NullPointerException": (
        "java.lang.RuntimeException",
        "java.lang.Exception",
        "java.lang.Throwable",
    ),
    "java.lang.Exception": ("java.lang.Throwable",),
    "java.lang.RuntimeException": ("java.lang.Exception", "java.lang.Throwable"),
    "java.lang.StackOverflowError": ("java.lang.Error", "java.lang.Throwable"),
    "java.lang.Error": ("java.lang.Throwable",),
}


def _catches(declared: str, thrown: str) -> bool:
    if declared == thrown:
        return True
    return declared in _EXCEPTION_HIERARCHY.get(thrown, ())
