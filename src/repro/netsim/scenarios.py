"""Canned mobility/disruption scenarios as link schedules.

The paper's §1 motivation is exactly these situations: "fluctuation of
wireless signals and switches between network domains or even different
network types".  Each scenario is a named :class:`LinkSchedule` usable
with :class:`~repro.netsim.runtime.Runtime` and the `nchecker run` CLI.
"""

from __future__ import annotations

from .link import (
    EDGE,
    LTE,
    LinkProfile,
    LinkSchedule,
    OFFLINE,
    THREE_G,
    WIFI,
)

#: Degraded-but-connected 3G (heavy loss; guards pass, requests suffer).
POOR_3G = LinkProfile("poor-3G", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)

#: Leaving home: WiFi drops, LTE picks up after a dead gap.
COMMUTE_START = LinkSchedule(
    (
        (0.0, WIFI),
        (10_000.0, OFFLINE),
        (13_000.0, LTE),
    )
)

#: Subway ride: alternating short cellular windows and dead tunnels.
SUBWAY = LinkSchedule(
    (
        (0.0, THREE_G),
        (20_000.0, OFFLINE),
        (50_000.0, THREE_G.with_loss(0.2)),
        (70_000.0, OFFLINE),
        (100_000.0, THREE_G),
    )
)

#: Crowded café: nominally connected WiFi that drops most packets.
FLAKY_CAFE = LinkSchedule.constant(
    LinkProfile("flaky-wifi", bandwidth_kbps=40_000, rtt_ms=5, loss_rate=0.45)
)

#: Rural drive: LTE degrading through 3G and EDGE to nothing.
RURAL_FADE = LinkSchedule(
    (
        (0.0, LTE),
        (30_000.0, THREE_G),
        (60_000.0, EDGE),
        (90_000.0, OFFLINE),
    )
)

#: Airplane mode toggled mid-session.
AIRPLANE_TOGGLE = LinkSchedule(
    (
        (0.0, WIFI),
        (5_000.0, OFFLINE),
        (60_000.0, WIFI),
    )
)

SCENARIOS: dict[str, LinkSchedule] = {
    "wifi": LinkSchedule.constant(WIFI),
    "3g": LinkSchedule.constant(THREE_G),
    "lte": LinkSchedule.constant(LTE),
    "edge": LinkSchedule.constant(EDGE),
    "offline": LinkSchedule.constant(OFFLINE),
    "poor-3g": LinkSchedule.constant(POOR_3G),
    "commute": COMMUTE_START,
    "subway": SUBWAY,
    "flaky-cafe": FLAKY_CAFE,
    "rural-fade": RURAL_FADE,
    "airplane-toggle": AIRPLANE_TOGGLE,
}
