"""Network simulation substrate: discrete-event engine, lossy links,
simplified TCP, library-accurate HTTP clients, and the IR runtime that
manifests NPD symptoms."""

from .energy import (
    CELLULAR_3G,
    EnergyEstimate,
    RadioProfile,
    WIFI_RADIO,
    energy_per_hour_mj,
    estimate_energy,
)
from .events import EventLoop
from .http import (
    HttpClientSim,
    RequestPolicy,
    RequestResult,
    download_success_rate,
)
from .link import (
    EDGE,
    LTE,
    LinkProfile,
    LinkSchedule,
    OFFLINE,
    PROFILES,
    THREE_G,
    THREE_G_CLEAN,
    THREE_G_LOSSY,
    WIFI,
    wifi_to_cellular_handover,
)
from .scenarios import POOR_3G, SCENARIOS
from .runtime import (
    BudgetExceeded,
    RunReport,
    Runtime,
    SimObject,
    SimulatedIOException,
    SimulatedNullPointer,
)
from .tcp import MSS, TransferOutcome, connect, transfer

__all__ = [
    "BudgetExceeded",
    "CELLULAR_3G",
    "EnergyEstimate",
    "RadioProfile",
    "WIFI_RADIO",
    "energy_per_hour_mj",
    "estimate_energy",
    "EDGE",
    "EventLoop",
    "HttpClientSim",
    "LTE",
    "LinkProfile",
    "LinkSchedule",
    "MSS",
    "OFFLINE",
    "PROFILES",
    "POOR_3G",
    "SCENARIOS",
    "RequestPolicy",
    "RequestResult",
    "RunReport",
    "Runtime",
    "SimObject",
    "SimulatedIOException",
    "SimulatedNullPointer",
    "THREE_G",
    "THREE_G_CLEAN",
    "THREE_G_LOSSY",
    "TransferOutcome",
    "WIFI",
    "connect",
    "wifi_to_cellular_handover",
    "download_success_rate",
    "transfer",
]
