"""A minimal discrete-event simulation engine.

Used by the runtime interpreter (:mod:`repro.netsim.runtime`) to order
network completions, reconnect timers, and sleeps on a virtual clock, so
symptom observations (hang duration, retry cadence) are deterministic and
independent of wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class EventLoop:
    """A priority-queue event loop over a millisecond virtual clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._stopped = False

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay_ms`` simulated milliseconds from now."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        heapq.heappush(
            self._queue, (self.now + delay_ms, next(self._counter), action)
        )

    def advance(self, delay_ms: float) -> None:
        """Move the clock forward without dispatching (synchronous waits)."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        self.now += delay_ms

    def stop(self) -> None:
        self._stopped = True

    def run(self, until_ms: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Dispatch events in time order; returns the number dispatched.

        Stops when the queue drains, the clock passes ``until_ms``, or
        ``max_events`` fires (a runaway-timer backstop — exactly the bug
        class the Telegram example exhibits)."""
        dispatched = 0
        self._stopped = False
        while self._queue and not self._stopped and dispatched < max_events:
            when, _seq, action = self._queue[0]
            if until_ms is not None and when > until_ms:
                break
            heapq.heappop(self._queue)
            self.now = max(self.now, when)
            action()
            dispatched += 1
        return dispatched

    @property
    def pending(self) -> int:
        return len(self._queue)
