"""Radio energy model: what an NPD costs in battery terms.

The paper's Fig 4 puts battery drain at 10 % of NPD impact and cites the
mobile-energy literature ([44], [47]) for the mechanism: the cellular
radio burns power not only while transmitting but through a multi-second
high-power *tail* after every transmission.  A reconnect loop that fires
every 500 ms therefore keeps the radio pinned in its high-power states
indefinitely.

The model is the standard three-state machine (active / tail / idle) with
parameters in the range those measurement studies report for 3G and WiFi.
``estimate_energy`` folds a :class:`~repro.netsim.runtime.RunReport` into
millijoules; the tests show a backoff-free retry loop costs orders of
magnitude more than the exponential-backoff fix over the same horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from .runtime import RunReport


@dataclass(frozen=True)
class RadioProfile:
    """Power draw (milliwatts) of the three radio states."""

    name: str
    active_mw: float
    tail_mw: float
    #: How long the radio lingers in the tail state after activity (ms).
    tail_ms: float
    idle_mw: float


#: 3G/UMTS: DCH ≈ 800 mW, FACH tail ≈ 460 mW for ~12.5 s (Balasubramanian
#: et al., IMC'09 — the paper's [44]).
CELLULAR_3G = RadioProfile("3G", active_mw=800.0, tail_mw=460.0, tail_ms=12_500.0, idle_mw=10.0)
#: WiFi: cheaper per-bit and a very short tail.
WIFI_RADIO = RadioProfile("WiFi", active_mw=400.0, tail_mw=120.0, tail_ms=240.0, idle_mw=8.0)


@dataclass(frozen=True)
class EnergyEstimate:
    """Breakdown of the radio energy for one run (millijoules)."""

    active_mj: float
    tail_mj: float
    idle_mj: float

    @property
    def total_mj(self) -> float:
        return self.active_mj + self.tail_mj + self.idle_mj

    @property
    def total_mah_at_3v7(self) -> float:
        """The same energy as battery charge at a nominal 3.7 V."""
        joules = self.total_mj / 1000.0
        return joules / 3.7 / 3.6  # C = J/V; mAh = C/3.6


def estimate_energy(
    report: RunReport, radio: RadioProfile = CELLULAR_3G
) -> EnergyEstimate:
    """Fold a run report into a radio-energy estimate.

    Active time comes straight from the report; each network attempt
    triggers one tail period (overlapping tails of a tight retry loop are
    clamped so tail time never exceeds the non-active wall-clock)."""
    active_ms = report.radio_active_ms
    idle_window_ms = max(0.0, report.sim_time_ms - active_ms)
    tail_ms = min(report.network_attempts * radio.tail_ms, idle_window_ms)
    idle_ms = idle_window_ms - tail_ms
    return EnergyEstimate(
        active_mj=active_ms * radio.active_mw / 1000.0,
        tail_mj=tail_ms * radio.tail_mw / 1000.0,
        idle_mj=idle_ms * radio.idle_mw / 1000.0,
    )


def energy_per_hour_mj(report: RunReport, radio: RadioProfile = CELLULAR_3G) -> float:
    """Energy normalised to a one-hour horizon (for comparing runs whose
    simulations ended at different virtual times)."""
    estimate = estimate_energy(report, radio)
    horizon = max(report.sim_time_ms, 1.0)
    return estimate.total_mj * (3_600_000.0 / horizon)
