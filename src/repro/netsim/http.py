"""HTTP client simulation with library-accurate timeout/retry policies.

``HttpClientSim`` reproduces the request behaviour of the modelled
libraries from their :class:`~repro.libmodels.annotations.LibraryDefaults`
— most importantly Volley's ``DefaultRetryPolicy`` (2500 ms initial
timeout, 1 retry, ×1 backoff), whose interaction with file size and
packet loss Figure 3 of the paper measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..libmodels.annotations import LibraryDefaults
from .link import LinkProfile
from . import tcp


@dataclass(frozen=True)
class RequestPolicy:
    """Effective request policy (after app configuration or defaults)."""

    timeout_ms: Optional[float] = None  # None = no read timeout (block)
    max_retries: int = 0
    backoff_multiplier: float = 1.0

    @classmethod
    def volley_default(cls) -> "RequestPolicy":
        """Volley's DefaultRetryPolicy: 2500 ms, 1 retry, backoff ×1."""
        return cls(timeout_ms=2500, max_retries=1, backoff_multiplier=1.0)

    @classmethod
    def from_defaults(cls, defaults: LibraryDefaults) -> "RequestPolicy":
        return cls(
            timeout_ms=defaults.timeout_ms,
            max_retries=defaults.retries,
            backoff_multiplier=defaults.backoff_multiplier,
        )


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one simulated HTTP request (all attempts included)."""

    success: bool
    total_ms: float
    attempts: int
    failure: Optional[str] = None  # "connect-timeout" | "read-timeout" | "offline"


class HttpClientSim:
    """Simulates requests under a policy over a (lossy) link."""

    def __init__(self, policy: RequestPolicy, rng: Optional[random.Random] = None) -> None:
        self.policy = policy
        self.rng = rng or random.Random(0)

    def request(self, link: LinkProfile, size_bytes: int) -> RequestResult:
        """One request with up to ``max_retries`` automatic retries; the
        per-attempt timeout grows by the backoff multiplier (Volley
        semantics)."""
        timeout = self.policy.timeout_ms
        elapsed = 0.0
        attempts = 0
        failure: Optional[str] = None
        for attempt in range(self.policy.max_retries + 1):
            attempts += 1
            outcome = self._attempt(link, size_bytes, timeout)
            elapsed += outcome.total_ms
            if outcome.completed:
                return RequestResult(True, elapsed, attempts)
            failure = outcome_failure(link, timeout)
            if timeout is not None:
                timeout = timeout * self.policy.backoff_multiplier
        return RequestResult(False, elapsed, attempts, failure)

    def _attempt(
        self, link: LinkProfile, size_bytes: int, timeout: Optional[float]
    ) -> tcp.TransferOutcome:
        handshake = tcp.connect(link, self.rng)
        if not handshake.completed:
            # Connect failure: the app waits min(connect timeout, SYN give-up).
            wait = handshake.total_ms
            if timeout is not None:
                wait = min(wait, timeout)
            return tcp.TransferOutcome(False, wait, wait)
        body = tcp.transfer(link, size_bytes, self.rng, read_timeout_ms=timeout)
        return tcp.TransferOutcome(
            body.completed,
            handshake.total_ms + body.total_ms,
            body.max_stall_ms,
            body.segments_sent,
            body.segments_lost,
        )


def outcome_failure(link: LinkProfile, timeout: Optional[float]) -> str:
    if not link.connected:
        return "offline"
    return "read-timeout" if timeout is not None else "connect-timeout"


def download_success_rate(
    link: LinkProfile,
    size_bytes: int,
    policy: RequestPolicy,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Fig 3's measurement: fraction of successful downloads."""
    rng = random.Random(f"{seed}:{link.name}:{size_bytes}")
    client = HttpClientSim(policy, rng)
    successes = sum(client.request(link, size_bytes).success for _ in range(trials))
    return successes / trials
