"""Simplified TCP transfer model.

Packet-level Monte Carlo: a transfer is a stream of MSS-sized segments;
each segment is lost independently with the link's loss rate, and a lost
segment is retransmitted after an RTO that doubles on consecutive losses
(Karn's algorithm shape).  The model exposes exactly what the HTTP layer
above needs: the total transfer time and the longest *stall* (the gap a
socket read blocks for), since Android's ``setReadTimeout`` aborts the
request when a single read stalls past the timeout.

The constants favour behavioural fidelity over protocol completeness:
congestion control is abstracted into the link's steady-state bandwidth,
which is what a conditioner-throttled 3G path presents anyway.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .link import LinkProfile

#: Maximum segment size (bytes).
MSS = 1460
#: Initial retransmission timeout (ms); doubles per consecutive loss.
INITIAL_RTO_MS = 600.0
#: RTO ceiling (ms).
MAX_RTO_MS = 60_000.0
#: TCP connect (SYN) retransmission timer (ms).
SYN_RTO_MS = 1_000.0
#: Give up the connect after this many SYN attempts.
MAX_SYN_ATTEMPTS = 6
#: Wireless loss is bursty: a retransmission of a just-lost segment is
#: lost with ``min(0.9, loss_rate * BURST_FACTOR)`` (Gilbert–Elliott
#: flavour), which is what makes long stall chains — and hence read
#: timeouts — common on lossy 3G.
BURST_FACTOR = 3.0


@dataclass(frozen=True)
class TransferOutcome:
    """Result of simulating one TCP transfer."""

    completed: bool
    total_ms: float
    #: Longest single stall a reader observed (ms).
    max_stall_ms: float
    #: Time of the first stall exceeding the caller's read timeout, if the
    #: caller supplied one (transfer is cut short there).
    segments_sent: int = 0
    segments_lost: int = 0


def connect(link: LinkProfile, rng: random.Random) -> TransferOutcome:
    """Simulate the TCP handshake; ``completed`` False means the connect
    never succeeded (dead link or SYN loss exhaustion)."""
    if not link.connected:
        # A dead link never answers: the caller's connect timeout (or the
        # OS's several-minute SYN give-up — paper Cause 3.1) decides.
        total = SYN_RTO_MS * (2 ** MAX_SYN_ATTEMPTS - 1)
        return TransferOutcome(False, total, total)
    elapsed = 0.0
    rto = SYN_RTO_MS
    for _attempt in range(MAX_SYN_ATTEMPTS):
        if rng.random() >= link.loss_rate:
            elapsed += link.rtt_ms
            return TransferOutcome(True, elapsed, 0.0)
        elapsed += rto
        rto = min(rto * 2, MAX_RTO_MS)
    return TransferOutcome(False, elapsed, elapsed)


def transfer(
    link: LinkProfile,
    size_bytes: int,
    rng: random.Random,
    read_timeout_ms: float | None = None,
) -> TransferOutcome:
    """Simulate transferring ``size_bytes`` over ``link``.

    When ``read_timeout_ms`` is given, the transfer aborts at the first
    stall exceeding it (``completed=False``) — the SocketTimeoutException
    path.
    """
    if not link.connected:
        stall = read_timeout_ms if read_timeout_ms is not None else MAX_RTO_MS
        return TransferOutcome(False, stall, stall)
    n_segments = max(1, (size_bytes + MSS - 1) // MSS)
    per_segment_ms = link.ms_per_bytes(min(MSS, size_bytes)) + link.rtt_ms / max(
        1, n_segments
    )
    elapsed = 0.0
    max_stall = 0.0
    sent = 0
    lost = 0
    burst_loss = min(0.9, link.loss_rate * BURST_FACTOR)
    for _ in range(n_segments):
        stall = 0.0
        rto = INITIAL_RTO_MS
        loss_p = link.loss_rate
        while rng.random() < loss_p:
            loss_p = burst_loss
            lost += 1
            stall += rto
            rto = min(rto * 2, MAX_RTO_MS)
            if read_timeout_ms is not None and stall >= read_timeout_ms:
                return TransferOutcome(
                    False,
                    elapsed + read_timeout_ms,
                    stall,
                    segments_sent=sent,
                    segments_lost=lost,
                )
        sent += 1
        max_stall = max(max_stall, stall)
        elapsed += per_segment_ms + stall
    return TransferOutcome(
        True, elapsed, max_stall, segments_sent=sent, segments_lost=lost
    )
