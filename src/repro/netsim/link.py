"""Lossy mobile-link models and the Network-Link-Conditioner profiles.

The paper's Fig 3 experiment throttled a real connection with Apple's
Network Link Conditioner; these profiles encode the standard conditioner
presets the experiment swept (3G with/without added packet loss).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LinkProfile:
    """Characteristics of one (simulated) network path."""

    name: str
    #: Downlink bandwidth in kilobits per second.
    bandwidth_kbps: float
    #: Round-trip time in milliseconds.
    rtt_ms: float
    #: Independent per-packet loss probability.
    loss_rate: float = 0.0
    #: Whether the link is up at all (airplane mode / dead zone).
    connected: bool = True

    def with_loss(self, loss_rate: float) -> "LinkProfile":
        return replace(
            self, name=f"{self.name}+loss{loss_rate:.0%}", loss_rate=loss_rate
        )

    def ms_per_bytes(self, n_bytes: int) -> float:
        """Serialisation delay for ``n_bytes`` at the link bandwidth."""
        bits = n_bytes * 8
        return bits / self.bandwidth_kbps  # kbps == bits per ms


#: Conditioner presets (downlink figures of the standard profiles).
THREE_G = LinkProfile("3G", bandwidth_kbps=780.0, rtt_ms=100.0)
EDGE = LinkProfile("EDGE", bandwidth_kbps=240.0, rtt_ms=400.0)
WIFI = LinkProfile("WiFi", bandwidth_kbps=40_000.0, rtt_ms=5.0)
LTE = LinkProfile("LTE", bandwidth_kbps=10_000.0, rtt_ms=50.0)
OFFLINE = LinkProfile("offline", bandwidth_kbps=1.0, rtt_ms=1.0, connected=False)

#: Fig 3's two conditions.
THREE_G_CLEAN = THREE_G
THREE_G_LOSSY = THREE_G.with_loss(0.10)

PROFILES: dict[str, LinkProfile] = {
    p.name: p for p in (THREE_G, EDGE, WIFI, LTE, OFFLINE)
}


@dataclass(frozen=True)
class LinkSchedule:
    """A mobility timeline: which link the device is on at each instant.

    Models the paper's Cause 4 environment — "switching from cellular to
    WiFi to tethering hotspots".  Each *segment* is a new network: a TCP
    connection established in one segment is stale in the next (the
    GTalkSMS bug: "the app still tries to receive data from the stale
    connections").
    """

    #: (start_ms, profile) pairs; the first must start at 0.
    segments: tuple[tuple[float, LinkProfile], ...]

    def __post_init__(self) -> None:
        if not self.segments or self.segments[0][0] != 0:
            raise ValueError("schedule must start at t=0")
        starts = [start for start, _ in self.segments]
        if starts != sorted(starts):
            raise ValueError("segments must be in time order")

    def segment_index(self, at_ms: float) -> int:
        """The epoch (network incarnation) active at ``at_ms``."""
        index = 0
        for i, (start, _profile) in enumerate(self.segments):
            if at_ms >= start:
                index = i
        return index

    def link_at(self, at_ms: float) -> LinkProfile:
        return self.segments[self.segment_index(at_ms)][1]

    @classmethod
    def constant(cls, link: LinkProfile) -> "LinkSchedule":
        return cls(((0.0, link),))


def wifi_to_cellular_handover(at_ms: float = 5_000.0) -> LinkSchedule:
    """The canonical switch scenario: WiFi, then a hop to 3G."""
    return LinkSchedule(((0.0, WIFI), (at_ms, THREE_G)))
