"""Fluent builders for constructing IR methods and classes in Python.

The corpus generator and the test suite construct thousands of method
bodies; doing that with raw statement lists would be unreadable.  The
builder offers three layers:

* atomic emission (``emit``, ``label``, ``goto``, ``if_goto``);
* expression helpers (``new``, ``call``, ``static_call``, ``assign``);
* structured control flow (``if_then`` / ``loop`` context managers and an
  explicit ``begin_try``/``begin_catch``/``end_try`` protocol for
  exception handlers, which is what hand-rolled retry loops need).

Every structured helper lowers to plain labels and gotos, so analyses see
exactly what a compiler frontend would produce.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence, Union

from .classes import IRClass
from .method import IRMethod, Trap
from .statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from .values import (
    CaughtExceptionExpr,
    ConditionExpr,
    Const,
    FieldRef,
    FieldSig,
    InvokeExpr,
    KIND_SPECIAL,
    KIND_STATIC,
    KIND_VIRTUAL,
    Local,
    MethodSig,
    NewExpr,
    THIS,
    Value,
)

#: Things accepted wherever a value is expected; plain Python literals are
#: wrapped into :class:`Const` automatically.
ValueLike = Union[Value, int, float, bool, str, None]


def as_value(value: ValueLike) -> Value:
    if isinstance(value, Value):
        return value
    return Const(value)


class TryRegion:
    """Book-keeping handle returned by :meth:`MethodBuilder.begin_try`."""

    def __init__(self, begin_label: str, after_label: str) -> None:
        self.begin_label = begin_label
        self.after_label = after_label
        self.end_label: Optional[str] = None
        self.catches: list[tuple[str, str]] = []  # (exc_type, handler_label)


class LoopHandle:
    """Handle exposed by :meth:`MethodBuilder.loop` for break/continue."""

    def __init__(self, builder: "MethodBuilder", head: str, exit_: str) -> None:
        self._builder = builder
        self.head_label = head
        self.exit_label = exit_

    def break_(self) -> None:
        self._builder.goto(self.exit_label)

    def continue_(self) -> None:
        self._builder.goto(self.head_label)


class MethodBuilder:
    """Builds a single :class:`IRMethod`."""

    def __init__(
        self,
        class_name: str,
        name: str,
        params: Sequence[tuple[str, str]] = (),
        return_type: str = "void",
        is_static: bool = False,
        modifiers: Sequence[str] = (),
    ) -> None:
        self.sig = MethodSig(
            class_name, name, tuple(t for t, _ in params), return_type
        )
        self.params = [Local(n, t) for t, n in params]
        self.is_static = is_static
        self.modifiers = frozenset(modifiers)
        self._stmts: list[Stmt] = []
        self._labels: dict[str, int] = {}
        self._traps: list[Trap] = []
        self._fresh_label = 0
        self._fresh_local = 0

    # -- atomic layer ---------------------------------------------------

    def emit(self, stmt: Stmt) -> None:
        self._stmts.append(stmt)

    def fresh_label(self, hint: str = "L") -> str:
        self._fresh_label += 1
        return f"{hint}{self._fresh_label}"

    def fresh_local(self, hint: str = "t") -> Local:
        self._fresh_local += 1
        return Local(f"${hint}{self._fresh_local}")

    def label(self, name: str) -> str:
        """Bind ``name`` to the *next* statement index."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._stmts)
        return name

    def goto(self, target: str) -> None:
        self.emit(GotoStmt(target))

    def if_goto(self, op: str, left: ValueLike, right: ValueLike, target: str) -> None:
        self.emit(IfStmt(ConditionExpr(op, as_value(left), as_value(right)), target))

    def nop(self) -> None:
        self.emit(NopStmt())

    def ret(self, value: ValueLike = None) -> None:
        self.emit(ReturnStmt(None if value is None else as_value(value)))

    def throw(self, value: ValueLike) -> None:
        self.emit(ThrowStmt(as_value(value)))

    # -- expression layer -----------------------------------------------

    def assign(self, target: Union[str, Local, FieldRef], value: ValueLike) -> Local:
        if isinstance(target, str):
            target = Local(target)
        self.emit(AssignStmt(target, as_value(value)))
        return target if isinstance(target, Local) else THIS

    def new(
        self,
        class_name: str,
        name: Optional[str] = None,
        args: Sequence[ValueLike] = (),
    ) -> Local:
        """Allocate an object and invoke its constructor; returns the local
        (carrying the class as its type hint, so later ``call``s on it
        resolve without an explicit ``cls``)."""
        local = Local(name, class_name) if name else Local(
            self.fresh_local("obj").name, class_name
        )
        self.emit(AssignStmt(local, NewExpr(class_name)))
        ctor = MethodSig(class_name, "<init>", tuple("?" for _ in args))
        self.emit(
            InvokeStmt(
                InvokeExpr(KIND_SPECIAL, local, ctor, tuple(as_value(a) for a in args))
            )
        )
        return local

    def call(
        self,
        base: Local,
        method: str,
        *args: ValueLike,
        ret: Optional[str] = None,
        cls: Optional[str] = None,
        return_type: str = "java.lang.Object",
    ) -> Optional[Local]:
        """Virtual call on ``base``; assigns the result when ``ret`` given.

        ``cls`` is the static receiver type written at the call site; when
        omitted it defaults to the local's type hint (or "?" if unknown,
        in which case resolution happens by method name alone).
        """
        declared = cls or base.type_hint or "?"
        sig = MethodSig(declared, method, tuple("?" for _ in args), return_type)
        expr = InvokeExpr(KIND_VIRTUAL, base, sig, tuple(as_value(a) for a in args))
        return self._finish_call(expr, ret)

    def static_call(
        self,
        class_name: str,
        method: str,
        *args: ValueLike,
        ret: Optional[str] = None,
        return_type: str = "java.lang.Object",
    ) -> Optional[Local]:
        sig = MethodSig(class_name, method, tuple("?" for _ in args), return_type)
        expr = InvokeExpr(KIND_STATIC, None, sig, tuple(as_value(a) for a in args))
        return self._finish_call(expr, ret)

    def _finish_call(self, expr: InvokeExpr, ret: Optional[str]) -> Optional[Local]:
        if ret is None:
            self.emit(InvokeStmt(expr))
            return None
        target = Local(ret)
        self.emit(AssignStmt(target, expr))
        return target

    def get_field(self, base: Optional[Local], cls: str, field: str, ret: str) -> Local:
        target = Local(ret)
        self.emit(AssignStmt(target, FieldRef(base, FieldSig(cls, field))))
        return target

    def set_field(self, base: Optional[Local], cls: str, field: str, value: ValueLike) -> None:
        self.emit(AssignStmt(FieldRef(base, FieldSig(cls, field)), as_value(value)))

    # -- structured control flow ------------------------------------------

    @contextlib.contextmanager
    def if_then(self, op: str, left: ValueLike, right: ValueLike) -> Iterator[None]:
        """Execute the body when ``left op right`` holds."""
        end = self.fresh_label("endif")
        cond = ConditionExpr(op, as_value(left), as_value(right)).negate()
        self.emit(IfStmt(cond, end))
        yield
        self.label(end)
        self.nop()

    @contextlib.contextmanager
    def if_else(
        self, op: str, left: ValueLike, right: ValueLike
    ) -> Iterator["ElseMarker"]:
        """``with b.if_else(...) as orelse: ...; orelse.start(); ...``"""
        else_label = self.fresh_label("else")
        end = self.fresh_label("endif")
        cond = ConditionExpr(op, as_value(left), as_value(right)).negate()
        self.emit(IfStmt(cond, else_label))
        marker = ElseMarker(self, else_label, end)
        yield marker
        if not marker.started:
            # No else branch was opened: the else label aliases the end.
            self.label(else_label)
        else:
            self.label(end)
        self.nop()

    @contextlib.contextmanager
    def loop(self) -> Iterator[LoopHandle]:
        """An unconditional loop; exit via ``handle.break_()`` or return."""
        head = self.fresh_label("loop")
        exit_ = self.fresh_label("endloop")
        self.label(head)
        self.nop()
        handle = LoopHandle(self, head, exit_)
        yield handle
        self.goto(head)
        self.label(exit_)
        self.nop()

    @contextlib.contextmanager
    def while_loop(self, op: str, left: ValueLike, right: ValueLike) -> Iterator[LoopHandle]:
        """Loop while ``left op right`` holds (condition tested at the head)."""
        head = self.fresh_label("while")
        exit_ = self.fresh_label("endwhile")
        self.label(head)
        cond = ConditionExpr(op, as_value(left), as_value(right)).negate()
        self.emit(IfStmt(cond, exit_))
        handle = LoopHandle(self, head, exit_)
        yield handle
        self.goto(head)
        self.label(exit_)
        self.nop()

    # -- exception handling -----------------------------------------------

    def begin_try(self) -> TryRegion:
        region = TryRegion(self.fresh_label("try"), self.fresh_label("after"))
        self.label(region.begin_label)
        return region

    def begin_catch(
        self, region: TryRegion, exc_type: str = "java.lang.Exception",
        exc_name: Optional[str] = None,
    ) -> Local:
        """Close the protected range (first call only) and open a handler.

        Emits the fall-through ``goto after`` for the preceding block and
        binds the caught exception to a local, which is returned.
        """
        self.goto(region.after_label)
        if region.end_label is None:
            # The protected range ends just before the goto emitted above
            # (the goto itself cannot throw, but excluding it keeps the
            # range tight and matches how dexers emit try items).
            region.end_label = self.fresh_label("endtry")
            self._labels[region.end_label] = len(self._stmts) - 1
        handler_label = self.fresh_label("catch")
        self.label(handler_label)
        region.catches.append((exc_type, handler_label))
        exc = Local(exc_name) if exc_name else self.fresh_local("exc")
        self.emit(AssignStmt(exc, CaughtExceptionExpr(exc_type)))
        return exc

    def end_try(self, region: TryRegion) -> None:
        """Close the whole construct; emits the join label."""
        if region.end_label is None:
            # try with no catch clauses degenerates to a plain block.
            region.end_label = self.fresh_label("endtry")
            self._labels[region.end_label] = len(self._stmts)
        else:
            self.goto(region.after_label)
        self.label(region.after_label)
        self.nop()
        for exc_type, handler_label in region.catches:
            self._traps.append(
                Trap(region.begin_label, region.end_label, handler_label, exc_type)
            )

    # -- finalisation -------------------------------------------------------

    def build(self, validate: bool = True) -> IRMethod:
        stmts = list(self._stmts)
        labels = dict(self._labels)
        # Labels may point one past the end (e.g. trailing end-labels); anchor
        # them on a final return for void methods so the body is well formed.
        if not stmts or not stmts[-1].is_terminator:
            stmts.append(ReturnStmt())
        method = IRMethod(
            self.sig,
            self.params,
            stmts,
            labels,
            self._traps,
            is_static=self.is_static,
            modifiers=self.modifiers,
        )
        if validate:
            method.validate()
        return method


class ElseMarker:
    """Separates the then- and else-branches inside ``if_else``."""

    def __init__(self, builder: MethodBuilder, else_label: str, end_label: str) -> None:
        self._builder = builder
        self._else_label = else_label
        self._end_label = end_label
        self.started = False

    def start(self) -> None:
        if self.started:
            raise RuntimeError("else branch already started")
        self.started = True
        self._builder.goto(self._end_label)
        self._builder.label(self._else_label)
        self._builder.nop()


class ClassBuilder:
    """Builds an :class:`IRClass`; hands out method builders."""

    def __init__(
        self,
        name: str,
        superclass: str = "java.lang.Object",
        interfaces: Sequence[str] = (),
        is_interface: bool = False,
    ) -> None:
        self._cls = IRClass(
            name, superclass, tuple(interfaces), is_interface=is_interface
        )

    @property
    def name(self) -> str:
        return self._cls.name

    def method(
        self,
        name: str,
        params: Sequence[tuple[str, str]] = (),
        return_type: str = "void",
        is_static: bool = False,
        modifiers: Sequence[str] = (),
    ) -> MethodBuilder:
        return MethodBuilder(
            self._cls.name, name, params, return_type, is_static, modifiers
        )

    def add(self, builder: MethodBuilder) -> IRMethod:
        method = builder.build()
        self._cls.add_method(method)
        return method

    def add_field(self, name: str, type_name: str = "java.lang.Object") -> None:
        self._cls.add_field(FieldSig(self._cls.name, name, type_name))

    def build(self) -> IRClass:
        return self._cls
