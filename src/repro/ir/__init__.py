"""Jimple-like intermediate representation for Android-style app binaries.

This package is the substrate the original NChecker obtained from Soot +
Dexpler: a typed three-address code with explicit labels, branches, and
exception traps.  It provides:

* :mod:`repro.ir.values` / :mod:`repro.ir.statements` -- the IR itself;
* :mod:`repro.ir.method` / :mod:`repro.ir.classes` -- bodies, classes, and
  hierarchy queries;
* :mod:`repro.ir.builder` -- fluent construction API;
* :mod:`repro.ir.parser` / :mod:`repro.ir.printer` -- the ``.apkt`` text
  format (round-trips).
"""

from .builder import ClassBuilder, ElseMarker, LoopHandle, MethodBuilder, TryRegion
from .classes import ClassHierarchy, IRClass
from .method import IRMethod, Trap
from .metrics import AppMetrics, MethodMetrics, app_metrics, method_metrics
from .transform import fresh_label, insert_statements
from .parser import ParseError, parse_class, parse_classes, parse_stmt
from .printer import format_stmt, print_class, print_method
from .statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from .values import (
    ArrayRef,
    BinaryExpr,
    CastExpr,
    CaughtExceptionExpr,
    ConditionExpr,
    Const,
    FieldRef,
    FieldSig,
    InstanceOfExpr,
    InvokeExpr,
    KIND_INTERFACE,
    KIND_SPECIAL,
    KIND_STATIC,
    KIND_VIRTUAL,
    LengthExpr,
    Local,
    MethodSig,
    NewArrayExpr,
    NewExpr,
    NULL,
    THIS,
    UnaryExpr,
    Value,
    locals_in,
)

__all__ = [
    "AppMetrics", "MethodMetrics", "app_metrics", "method_metrics",
    "fresh_label", "insert_statements",
    "ArrayRef", "AssignStmt", "BinaryExpr", "CastExpr", "CaughtExceptionExpr",
    "ClassBuilder", "ClassHierarchy", "ConditionExpr", "Const", "ElseMarker",
    "FieldRef", "FieldSig", "GotoStmt", "IRClass", "IRMethod", "IfStmt",
    "InstanceOfExpr", "InvokeExpr", "InvokeStmt", "KIND_INTERFACE",
    "KIND_SPECIAL", "KIND_STATIC", "KIND_VIRTUAL", "LengthExpr", "Local",
    "LoopHandle", "MethodBuilder", "MethodSig", "NULL", "NewArrayExpr",
    "NewExpr", "NopStmt", "ParseError", "ReturnStmt", "Stmt", "THIS",
    "ThrowStmt", "Trap", "TryRegion", "UnaryExpr", "Value", "format_stmt",
    "locals_in", "parse_class", "parse_classes", "parse_stmt", "print_class",
    "print_method",
]
