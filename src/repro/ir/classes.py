"""Classes and class hierarchies of the IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .method import IRMethod
from .values import FieldSig, OBJECT


@dataclass(slots=True)
class IRClass:
    """A class (or interface) definition.

    Methods are indexed by ``(name, arity)`` — the "sub-signature".  The
    corpus and parser never produce same-name/same-arity overloads, and
    resolution by sub-signature matches how the original tool matched
    annotated library APIs against call sites.
    """

    name: str
    superclass: Optional[str] = OBJECT
    interfaces: tuple[str, ...] = ()
    is_interface: bool = False
    fields: dict[str, FieldSig] = field(default_factory=dict)
    _methods: dict[tuple[str, int], IRMethod] = field(default_factory=dict)

    def add_method(self, method: IRMethod) -> None:
        key = (method.sig.name, method.sig.arity)
        if key in self._methods:
            raise ValueError(
                f"duplicate method {method.sig.name}/{method.sig.arity} "
                f"in class {self.name}"
            )
        self._methods[key] = method

    def add_field(self, sig: FieldSig) -> None:
        self.fields[sig.name] = sig

    def get_method(self, name: str, arity: int) -> Optional[IRMethod]:
        return self._methods.get((name, arity))

    def methods(self) -> Iterator[IRMethod]:
        yield from self._methods.values()

    def method_keys(self) -> set[tuple[str, int]]:
        return set(self._methods)

    @property
    def simple_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def __repr__(self) -> str:
        return f"<IRClass {self.name} ({len(self._methods)} methods)>"


class ClassHierarchy:
    """A collection of application classes with subtype queries.

    Classes *not* in the collection (Android framework classes, library
    classes) are opaque: ``is_subtype`` falls back to name equality plus
    any externally registered edges (the library models register the
    framework hierarchy they care about, e.g. ``Activity <: Context``).
    """

    __slots__ = ("_classes", "_external_supers", "_supertypes_cache")

    def __init__(self) -> None:
        self._classes: dict[str, IRClass] = {}
        self._external_supers: dict[str, set[str]] = {}
        #: Memoized transitive supertype sets; any edge change (a new
        #: class or external edge) drops the whole memo — both are rare
        #: setup-time events, while subtype queries run on every scan.
        self._supertypes_cache: dict[str, set[str]] = {}

    def add_class(self, cls: IRClass) -> None:
        if cls.name in self._classes:
            raise ValueError(f"duplicate class {cls.name}")
        self._classes[cls.name] = cls
        self._supertypes_cache.clear()

    def add_external_edge(self, subclass: str, superclass: str) -> None:
        """Register a supertype edge for a class outside the application
        (used to model the Android framework hierarchy)."""
        self._external_supers.setdefault(subclass, set()).add(superclass)
        self._supertypes_cache.clear()

    def get(self, name: str) -> Optional[IRClass]:
        return self._classes.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[IRClass]:
        yield from self._classes.values()

    def __len__(self) -> int:
        return len(self._classes)

    def supertypes(self, name: str) -> set[str]:
        """All transitive supertypes of ``name`` (classes and interfaces),
        excluding ``name`` itself.  Memoized; callers must not mutate the
        returned set."""
        cached = self._supertypes_cache.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            parents: set[str] = set()
            cls = self._classes.get(current)
            if cls is not None:
                if cls.superclass:
                    parents.add(cls.superclass)
                parents.update(cls.interfaces)
            parents.update(self._external_supers.get(current, ()))
            for parent in parents:
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        self._supertypes_cache[name] = seen
        return seen

    def is_subtype(self, name: str, supertype: str) -> bool:
        return name == supertype or supertype in self.supertypes(name)

    def subclasses(self, name: str) -> set[str]:
        """Application classes that are (transitive) subtypes of ``name``."""
        return {
            cls.name for cls in self._classes.values() if self.is_subtype(cls.name, name)
        }

    def resolve_method(
        self, class_name: str, method_name: str, arity: int
    ) -> Optional[IRMethod]:
        """Virtual-dispatch resolution: walk up the superclass chain from
        ``class_name`` and return the first matching body."""
        current: Optional[str] = class_name
        while current is not None:
            cls = self._classes.get(current)
            if cls is None:
                return None
            method = cls.get_method(method_name, arity)
            if method is not None:
                return method
            current = cls.superclass
        return None
