"""Canonical text serialisation of the IR (the ``.apkt`` class format).

The printer and :mod:`repro.ir.parser` round-trip: ``parse(print(cls))``
reproduces an equivalent class.  Declared parameter types of call-site
signatures are not preserved (they are written as ``?`` by the builders
and resolution is by name + arity), which the format makes explicit by
omitting them.
"""

from __future__ import annotations

from typing import Iterator

from .classes import IRClass
from .method import IRMethod
from .statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from .values import (
    ArrayRef,
    BinaryExpr,
    CastExpr,
    CaughtExceptionExpr,
    Const,
    FieldRef,
    InstanceOfExpr,
    InvokeExpr,
    LengthExpr,
    Local,
    NewArrayExpr,
    NewExpr,
    UnaryExpr,
    Value,
)


def format_value(value: Value) -> str:
    """Render an atomic value or expression in parseable form."""
    if isinstance(value, Local):
        return value.name
    if isinstance(value, Const):
        return str(value)
    if isinstance(value, NewExpr):
        return f"new {value.class_name}"
    if isinstance(value, NewArrayExpr):
        return f"newarray {value.element_type} {format_value(value.size)}"
    if isinstance(value, InvokeExpr):
        return format_invoke(value)
    if isinstance(value, FieldRef):
        if value.base is None:
            return f"getstatic {value.sig.class_name}.{value.sig.name}"
        return f"getfield {value.base.name} {value.sig.class_name}.{value.sig.name}"
    if isinstance(value, ArrayRef):
        return f"aload {value.base.name} {format_value(value.index)}"
    if isinstance(value, BinaryExpr):
        return f"{format_value(value.left)} {value.op} {format_value(value.right)}"
    if isinstance(value, UnaryExpr):
        return f"{value.op} {format_value(value.operand)}"
    if isinstance(value, CastExpr):
        return f"cast {value.type_name} {format_value(value.value)}"
    if isinstance(value, InstanceOfExpr):
        return f"{format_value(value.value)} instanceof {value.type_name}"
    if isinstance(value, LengthExpr):
        return f"lengthof {format_value(value.value)}"
    if isinstance(value, CaughtExceptionExpr):
        return f"catch {value.exception_type}"
    raise TypeError(f"unprintable value: {value!r}")


def format_invoke(expr: InvokeExpr) -> str:
    args = ", ".join(format_value(a) for a in expr.args)
    if expr.base is None:
        callee = f"{expr.sig.class_name}#{expr.sig.name}"
    else:
        callee = f"{expr.base.name}:{expr.sig.class_name}#{expr.sig.name}"
    text = f"invoke {expr.kind} {callee}({args})"
    if expr.sig.return_type not in ("void", "java.lang.Object"):
        text += f" -> {expr.sig.return_type}"
    return text


def format_stmt(stmt: Stmt) -> str:
    if isinstance(stmt, AssignStmt):
        if isinstance(stmt.target, Local):
            return f"{stmt.target.name} = {format_value(stmt.value)}"
        if isinstance(stmt.target, FieldRef):
            ref = stmt.target
            rhs = format_value(stmt.value)
            if ref.base is None:
                return f"putstatic {ref.sig.class_name}.{ref.sig.name} = {rhs}"
            return (
                f"putfield {ref.base.name} "
                f"{ref.sig.class_name}.{ref.sig.name} = {rhs}"
            )
        if isinstance(stmt.target, ArrayRef):
            ref = stmt.target
            return (
                f"astore {ref.base.name} {format_value(ref.index)} = "
                f"{format_value(stmt.value)}"
            )
        raise TypeError(f"unprintable assignment target: {stmt.target!r}")
    if isinstance(stmt, InvokeStmt):
        return format_invoke(stmt.expr)
    if isinstance(stmt, IfStmt):
        cond = stmt.condition
        return (
            f"if {format_value(cond.left)} {cond.op} "
            f"{format_value(cond.right)} goto {stmt.target}"
        )
    if isinstance(stmt, GotoStmt):
        return f"goto {stmt.target}"
    if isinstance(stmt, ReturnStmt):
        return "return" if stmt.value is None else f"return {format_value(stmt.value)}"
    if isinstance(stmt, ThrowStmt):
        return f"throw {format_value(stmt.value)}"
    if isinstance(stmt, NopStmt):
        return "nop"
    raise TypeError(f"unprintable statement: {stmt!r}")


def method_lines(method: IRMethod) -> Iterator[str]:
    params = ", ".join(
        f"{p.type_hint or 'java.lang.Object'} {p.name}" for p in method.params
    )
    static = " static" if method.is_static else ""
    yield f"method {method.sig.return_type} {method.sig.name}({params}){static} {{"
    by_index: dict[int, list[str]] = {}
    for name, idx in method.labels.items():
        by_index.setdefault(idx, []).append(name)
    for idx, stmt in enumerate(method.statements):
        for label in sorted(by_index.get(idx, ())):
            yield f"  {label}:"
        yield f"    {format_stmt(stmt)}"
    for label in sorted(by_index.get(len(method.statements), ())):
        yield f"  {label}:"
    for trap in method.traps:
        yield (
            f"    trap {trap.exc_type} from {trap.begin} to {trap.end} "
            f"using {trap.handler}"
        )
    yield "}"


def class_lines(cls: IRClass) -> Iterator[str]:
    header = f"class {cls.name}"
    if cls.is_interface:
        header = f"interface {cls.name}"
    if cls.superclass and cls.superclass != "java.lang.Object":
        header += f" extends {cls.superclass}"
    if cls.interfaces:
        header += " implements " + ", ".join(cls.interfaces)
    yield header + " {"
    for field_sig in cls.fields.values():
        yield f"  field {field_sig.type_name} {field_sig.name}"
    for method in cls.methods():
        for line in method_lines(method):
            yield "  " + line
    yield "}"


def print_class(cls: IRClass) -> str:
    return "\n".join(class_lines(cls)) + "\n"


def print_method(method: IRMethod) -> str:
    return "\n".join(method_lines(method)) + "\n"
