"""Code metrics over IR methods, classes, and whole apps.

Used by ``nchecker scan --stats`` and the scaling benchmarks: app size
(statements), call-site counts, and McCabe cyclomatic complexity (edges −
nodes + 2·components over the statement-level CFG).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import CFG
from .method import IRMethod


@dataclass(frozen=True)
class MethodMetrics:
    name: str
    statements: int
    invoke_sites: int
    traps: int
    cyclomatic: int


@dataclass(frozen=True)
class AppMetrics:
    classes: int
    methods: int
    statements: int
    invoke_sites: int
    traps: int
    max_cyclomatic: int
    mean_statements_per_method: float

    def as_rows(self) -> list[list[str]]:
        return [
            ["classes", str(self.classes)],
            ["methods", str(self.methods)],
            ["statements", str(self.statements)],
            ["invoke sites", str(self.invoke_sites)],
            ["try/catch traps", str(self.traps)],
            ["max cyclomatic complexity", str(self.max_cyclomatic)],
            ["mean statements/method", f"{self.mean_statements_per_method:.1f}"],
        ]


def method_metrics(method: IRMethod) -> MethodMetrics:
    cfg = CFG(method)
    reachable = cfg.reachable_from(cfg.entry)
    edges = sum(
        1 for node in reachable for succ in cfg.succs[node] if succ in reachable
    )
    # Single connected component from the entry by construction.
    cyclomatic = edges - len(reachable) + 2
    return MethodMetrics(
        method.sig.qualified_name,
        len(method.statements),
        sum(1 for _ in method.invoke_sites()),
        len(method.traps),
        cyclomatic,
    )


def app_metrics(apk) -> AppMetrics:
    per_method = [method_metrics(m) for m in apk.methods()]
    n_methods = len(per_method)
    total_statements = sum(m.statements for m in per_method)
    return AppMetrics(
        classes=len(apk.hierarchy),
        methods=n_methods,
        statements=total_statements,
        invoke_sites=sum(m.invoke_sites for m in per_method),
        traps=sum(m.traps for m in per_method),
        max_cyclomatic=max((m.cyclomatic for m in per_method), default=0),
        mean_statements_per_method=(
            total_statements / n_methods if n_methods else 0.0
        ),
    )
