"""Parser for the ``.apkt`` class text format (inverse of the printer).

The format is line-oriented: one statement per line, labels on their own
lines, traps declared at the end of the method body.  See
:mod:`repro.ir.printer` for the grammar by example.
"""

from __future__ import annotations

import re
from typing import Optional

from .classes import IRClass
from .method import IRMethod, Trap
from .statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from .values import (
    ArrayRef,
    BINARY_OPS,
    BinaryExpr,
    CastExpr,
    CaughtExceptionExpr,
    COND_OPS,
    ConditionExpr,
    Const,
    FieldRef,
    FieldSig,
    InstanceOfExpr,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NewArrayExpr,
    NewExpr,
    UnaryExpr,
    Value,
)


class ParseError(ValueError):
    """Raised on malformed ``.apkt`` input, with a line number."""

    def __init__(self, message: str, line_no: int, line: str = "") -> None:
        super().__init__(f"line {line_no}: {message}" + (f": {line!r}" if line else ""))
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_$][\w$]*):$")
_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d+$")
_IDENT_RE = re.compile(r"^[A-Za-z_$][\w$.]*$")
_CALLEE_RE = re.compile(
    r"^(?:(?P<base>[A-Za-z_$][\w$]*):)?(?P<cls>[\w$.]+)#(?P<name>[\w$<>]+)$"
)
_METHOD_RE = re.compile(
    r"^method\s+(?P<ret>[\w$.\[\]]+)\s+(?P<name>[\w$<>]+)\((?P<params>[^)]*)\)"
    r"(?P<static>\s+static)?\s*\{$"
)
_CLASS_RE = re.compile(
    r"^(?P<kind>class|interface)\s+(?P<name>[\w$.]+)"
    r"(?:\s+extends\s+(?P<super>[\w$.]+))?"
    r"(?:\s+implements\s+(?P<ifaces>[\w$.,\s]+))?\s*\{$"
)
_TRAP_RE = re.compile(
    r"^trap\s+(?P<exc>[\w$.]+)\s+from\s+(?P<begin>[\w$]+)\s+to\s+(?P<end>[\w$]+)"
    r"\s+using\s+(?P<handler>[\w$]+)$"
)


def _strip_comment(line: str) -> str:
    """Remove ``#``-to-end-of-line comments outside string literals.

    A ``#`` inside single quotes (string constants) or in an invoke callee
    (``cls#name(``) is kept: invoke callees are recognised because the
    character following the hash is an identifier character and the line
    starts with/contains ``invoke``.
    """
    out = []
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "'":
            in_str = not in_str
        if ch == "#" and not in_str:
            # Hash inside an invoke callee: letter/underscore/'<' follows.
            nxt = line[i + 1] if i + 1 < len(line) else " "
            if not (nxt.isalnum() or nxt in "_$<"):
                break
        out.append(ch)
        i += 1
    return "".join(out).strip()


def _split_args(text: str) -> list[str]:
    """Split a comma-separated argument list, respecting quoted strings."""
    parts: list[str] = []
    depth_str = False
    current: list[str] = []
    for ch in text:
        if ch == "'":
            depth_str = not depth_str
            current.append(ch)
        elif ch == "," and not depth_str:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_atom(token: str, line_no: int = 0) -> Value:
    token = token.strip()
    if token == "null":
        return Const(None)
    if token == "true":
        return Const(True)
    if token == "false":
        return Const(False)
    if _INT_RE.match(token):
        return Const(int(token))
    if _FLOAT_RE.match(token):
        return Const(float(token))
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return Const(token[1:-1])
    if _IDENT_RE.match(token) and "." not in token:
        return Local(token)
    raise ParseError(f"cannot parse atom {token!r}", line_no)


def _parse_invoke(text: str, line_no: int) -> InvokeExpr:
    rest = text[len("invoke "):].strip()
    try:
        kind, rest = rest.split(None, 1)
    except ValueError:
        raise ParseError("malformed invoke", line_no, text) from None
    return_type = "java.lang.Object"
    if "->" in rest:
        rest, ret = rest.rsplit("->", 1)
        return_type = ret.strip()
        rest = rest.strip()
    open_paren = rest.index("(")
    if not rest.endswith(")"):
        raise ParseError("invoke missing closing parenthesis", line_no, text)
    callee_text = rest[:open_paren]
    args_text = rest[open_paren + 1 : -1]
    match = _CALLEE_RE.match(callee_text)
    if match is None:
        raise ParseError(f"malformed invoke callee {callee_text!r}", line_no)
    args = tuple(parse_atom(a, line_no) for a in _split_args(args_text))
    sig = MethodSig(
        match.group("cls"),
        match.group("name"),
        tuple("?" for _ in args),
        return_type,
    )
    base = Local(match.group("base")) if match.group("base") else None
    try:
        return InvokeExpr(kind, base, sig, args)
    except ValueError as exc:  # unknown kind, receiver mismatch
        raise ParseError(str(exc), line_no, text) from None


def _parse_rhs(text: str, line_no: int) -> Value:
    text = text.strip()
    if text.startswith("new "):
        return NewExpr(text[4:].strip())
    if text.startswith("newarray "):
        _, elem, size = text.split(None, 2)
        return NewArrayExpr(elem, parse_atom(size, line_no))
    if text.startswith("invoke "):
        return _parse_invoke(text, line_no)
    if text.startswith("getstatic "):
        qualified = text[len("getstatic "):].strip()
        cls, _, name = qualified.rpartition(".")
        return FieldRef(None, FieldSig(cls, name))
    if text.startswith("getfield "):
        _, base, qualified = text.split(None, 2)
        cls, _, name = qualified.rpartition(".")
        return FieldRef(Local(base), FieldSig(cls, name))
    if text.startswith("aload "):
        _, base, index = text.split(None, 2)
        return ArrayRef(Local(base), parse_atom(index, line_no))
    if text.startswith("cast "):
        _, type_name, value = text.split(None, 2)
        return CastExpr(type_name, parse_atom(value, line_no))
    if text.startswith(("neg ", "not ")):
        op, operand = text.split(None, 1)
        return UnaryExpr(op, parse_atom(operand, line_no))
    if text.startswith("lengthof "):
        return LengthExpr(parse_atom(text[len("lengthof "):], line_no))
    if text.startswith("catch "):
        return CaughtExceptionExpr(text[len("catch "):].strip())
    if " instanceof " in text:
        value, type_name = text.split(" instanceof ", 1)
        return InstanceOfExpr(parse_atom(value, line_no), type_name.strip())
    # Binary expression: "a OP b" with a single space-separated operator.
    # String constants never contain spaces around operators in our corpus,
    # but guard against splitting inside quotes anyway.
    if not (text.startswith("'") and text.endswith("'")):
        for op in sorted(BINARY_OPS, key=len, reverse=True):
            sep = f" {op} "
            if sep in text:
                left, right = text.split(sep, 1)
                return BinaryExpr(
                    op, parse_atom(left, line_no), parse_atom(right, line_no)
                )
    return parse_atom(text, line_no)


def parse_stmt(line: str, line_no: int = 0) -> Stmt:
    """Parse one statement line (label lines are handled by the caller)."""
    # Bare-local assignment wins over keyword dispatch: locals may shadow
    # statement keywords ("if = 0"), and no keyword statement ever has
    # "=" as its second token, so "<ident> = rhs" is unambiguous.
    assign = re.match(r"^[A-Za-z_$][\w$]* = ", line)
    if assign is not None:
        target, rhs = line.split(" = ", 1)
        return AssignStmt(Local(target), _parse_rhs(rhs, line_no))
    if line == "nop":
        return NopStmt()
    if line == "return":
        return ReturnStmt()
    if line.startswith("return "):
        return ReturnStmt(parse_atom(line[7:], line_no))
    if line.startswith("throw "):
        return ThrowStmt(parse_atom(line[6:], line_no))
    if line.startswith("goto "):
        return GotoStmt(line[5:].strip())
    if line.startswith("if "):
        match = re.match(
            r"^if\s+(\S+)\s+(==|!=|<=|>=|<|>)\s+(\S+)\s+goto\s+([\w$]+)$", line
        )
        if match is None:
            raise ParseError("malformed if", line_no, line)
        left, op, right, target = match.groups()
        if op not in COND_OPS:
            raise ParseError(f"unknown condition operator {op!r}", line_no)
        return IfStmt(
            ConditionExpr(op, parse_atom(left, line_no), parse_atom(right, line_no)),
            target,
        )
    if line.startswith("invoke "):
        return InvokeStmt(_parse_invoke(line, line_no))
    if line.startswith("putfield "):
        head, rhs = line.split(" = ", 1)
        _, base, qualified = head.split(None, 2)
        cls, _, name = qualified.rpartition(".")
        return AssignStmt(
            FieldRef(Local(base), FieldSig(cls, name)), parse_atom(rhs, line_no)
        )
    if line.startswith("putstatic "):
        head, rhs = line.split(" = ", 1)
        qualified = head[len("putstatic "):].strip()
        cls, _, name = qualified.rpartition(".")
        return AssignStmt(FieldRef(None, FieldSig(cls, name)), parse_atom(rhs, line_no))
    if line.startswith("astore "):
        head, rhs = line.split(" = ", 1)
        _, base, index = head.split(None, 2)
        return AssignStmt(
            ArrayRef(Local(base), parse_atom(index, line_no)),
            parse_atom(rhs, line_no),
        )
    if " = " in line:
        target, rhs = line.split(" = ", 1)
        target = target.strip()
        if not _IDENT_RE.match(target) or "." in target:
            raise ParseError(f"bad assignment target {target!r}", line_no, line)
        return AssignStmt(Local(target), _parse_rhs(rhs, line_no))
    raise ParseError("unrecognised statement", line_no, line)


class _Cursor:
    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.pos = 0

    def next_meaningful(self) -> Optional[tuple[int, str]]:
        while self.pos < len(self.lines):
            raw = self.lines[self.pos]
            self.pos += 1
            line = _strip_comment(raw)
            if line:
                return self.pos, line
        return None

    def peek(self) -> Optional[tuple[int, str]]:
        saved = self.pos
        result = self.next_meaningful()
        self.pos = saved
        return result


def _parse_method(cursor: _Cursor, class_name: str, header: str, line_no: int) -> IRMethod:
    match = _METHOD_RE.match(header)
    if match is None:
        raise ParseError("malformed method header", line_no, header)
    params: list[Local] = []
    param_types: list[str] = []
    params_text = match.group("params").strip()
    if params_text:
        for part in params_text.split(","):
            pieces = part.split()
            if len(pieces) != 2:
                raise ParseError(f"malformed parameter {part!r}", line_no)
            param_types.append(pieces[0])
            params.append(Local(pieces[1], pieces[0]))
    sig = MethodSig(
        class_name, match.group("name"), tuple(param_types), match.group("ret")
    )
    statements: list[Stmt] = []
    labels: dict[str, int] = {}
    traps: list[Trap] = []
    while True:
        item = cursor.next_meaningful()
        if item is None:
            raise ParseError("unexpected end of input in method body", line_no)
        stmt_no, line = item
        if line == "}":
            break
        label_match = _LABEL_RE.match(line)
        if label_match is not None:
            name = label_match.group(1)
            if name in labels:
                raise ParseError(f"duplicate label {name!r}", stmt_no)
            labels[name] = len(statements)
            continue
        trap_match = _TRAP_RE.match(line)
        if trap_match is not None:
            traps.append(
                Trap(
                    trap_match.group("begin"),
                    trap_match.group("end"),
                    trap_match.group("handler"),
                    trap_match.group("exc"),
                )
            )
            continue
        statements.append(parse_stmt(line, stmt_no))
    method = IRMethod(
        sig,
        params,
        statements,
        labels,
        traps,
        is_static=bool(match.group("static")),
    )
    method.validate()
    return method


def _parse_class_body(cursor: _Cursor, header: str, line_no: int) -> IRClass:
    match = _CLASS_RE.match(header)
    if match is None:
        raise ParseError("malformed class header", line_no, header)
    interfaces: tuple[str, ...] = ()
    if match.group("ifaces"):
        interfaces = tuple(
            part.strip() for part in match.group("ifaces").split(",") if part.strip()
        )
    cls = IRClass(
        match.group("name"),
        match.group("super") or "java.lang.Object",
        interfaces,
        is_interface=match.group("kind") == "interface",
    )
    while True:
        item = cursor.next_meaningful()
        if item is None:
            raise ParseError("unexpected end of input in class body", line_no)
        member_no, line = item
        if line == "}":
            break
        if line.startswith("field "):
            pieces = line.split()
            if len(pieces) != 3:
                raise ParseError("malformed field", member_no, line)
            cls.add_field(FieldSig(cls.name, pieces[2], pieces[1]))
            continue
        if line.startswith("method "):
            cls.add_method(_parse_method(cursor, cls.name, line, member_no))
            continue
        raise ParseError("unrecognised class member", member_no, line)
    return cls


def parse_class(text: str) -> IRClass:
    """Parse exactly one class definition."""
    classes = parse_classes(text)
    if len(classes) != 1:
        raise ParseError(f"expected exactly one class, found {len(classes)}", 0)
    return classes[0]


def parse_classes(text: str) -> list[IRClass]:
    """Parse a sequence of class definitions."""
    cursor = _Cursor(text)
    classes: list[IRClass] = []
    while True:
        item = cursor.next_meaningful()
        if item is None:
            return classes
        line_no, line = item
        if line.startswith(("class ", "interface ")):
            classes.append(_parse_class_body(cursor, line, line_no))
        else:
            raise ParseError("expected class or interface", line_no, line)
