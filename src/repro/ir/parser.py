"""Parser for the ``.apkt`` class text format (inverse of the printer).

The format is line-oriented: one statement per line, labels on their own
lines, traps declared at the end of the method body.  See
:mod:`repro.ir.printer` for the grammar by example.
"""

from __future__ import annotations

import re
from typing import Optional

from .classes import IRClass
from .method import IRMethod, Trap
from .statements import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from .values import (
    ArrayRef,
    BINARY_OPS,
    BinaryExpr,
    CastExpr,
    CaughtExceptionExpr,
    COND_OPS,
    ConditionExpr,
    Const,
    FieldRef,
    FieldSig,
    InstanceOfExpr,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NewArrayExpr,
    NewExpr,
    UnaryExpr,
    Value,
)


class ParseError(ValueError):
    """Raised on malformed ``.apkt`` input, with a line number."""

    def __init__(self, message: str, line_no: int, line: str = "") -> None:
        super().__init__(f"line {line_no}: {message}" + (f": {line!r}" if line else ""))
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_$][\w$]*):$")
_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d+$")
_IDENT_RE = re.compile(r"^[A-Za-z_$][\w$.]*$")
_CALLEE_RE = re.compile(
    r"^(?:(?P<base>[A-Za-z_$][\w$]*):)?(?P<cls>[\w$.]+)#(?P<name>[\w$<>]+)$"
)
_METHOD_RE = re.compile(
    r"^method\s+(?P<ret>[\w$.\[\]]+)\s+(?P<name>[\w$<>]+)\((?P<params>[^)]*)\)"
    r"(?P<static>\s+static)?\s*\{$"
)
_CLASS_RE = re.compile(
    r"^(?P<kind>class|interface)\s+(?P<name>[\w$.]+)"
    r"(?:\s+extends\s+(?P<super>[\w$.]+))?"
    r"(?:\s+implements\s+(?P<ifaces>[\w$.,\s]+))?\s*\{$"
)
_TRAP_RE = re.compile(
    r"^trap\s+(?P<exc>[\w$.]+)\s+from\s+(?P<begin>[\w$]+)\s+to\s+(?P<end>[\w$]+)"
    r"\s+using\s+(?P<handler>[\w$]+)$"
)
_ASSIGN_RE = re.compile(r"^[A-Za-z_$][\w$]* = ")
_IF_RE = re.compile(r"^if\s+(\S+)\s+(==|!=|<=|>=|<|>)\s+(\S+)\s+goto\s+([\w$]+)$")
#: Longest-operator-first separators for the binary-expression scan.
_BINARY_SEPS = tuple(
    (f" {op} ", op)
    for op in sorted(BINARY_OPS, key=len, reverse=True)
)


#: Memoized comment stripping: invoke lines all contain ``#`` (the callee
#: separator) and so take the scanning path, but raw lines recur heavily
#: across methods and apps, making a bounded text→text cache profitable.
_STRIP_CACHE: dict[str, str] = {}
_STRIP_CACHE_MAX = 65536


def _strip_comment(line: str) -> str:
    """Remove ``#``-to-end-of-line comments outside string literals.

    A ``#`` inside single quotes (string constants) or in an invoke callee
    (``cls#name(``) is kept: invoke callees are recognised because the
    character following the hash is an identifier character and the line
    starts with/contains ``invoke``.
    """
    if "#" not in line:
        return line.strip()
    cached = _STRIP_CACHE.get(line)
    if cached is None:
        cached = _strip_comment_uncached(line)
        if len(_STRIP_CACHE) < _STRIP_CACHE_MAX:
            _STRIP_CACHE[line] = cached
    return cached


def _strip_comment_uncached(line: str) -> str:
    if "'" not in line:
        # No string literals on the line: every hash is either a callee
        # separator (identifier character follows) or starts the comment.
        start = 0
        while True:
            i = line.find("#", start)
            if i < 0:
                return line.strip()
            nxt = line[i + 1] if i + 1 < len(line) else " "
            if not (nxt.isalnum() or nxt in "_$<"):
                return line[:i].strip()
            start = i + 1
    out = []
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "'":
            in_str = not in_str
        if ch == "#" and not in_str:
            # Hash inside an invoke callee: letter/underscore/'<' follows.
            nxt = line[i + 1] if i + 1 < len(line) else " "
            if not (nxt.isalnum() or nxt in "_$<"):
                break
        out.append(ch)
        i += 1
    return "".join(out).strip()


def _split_args(text: str) -> list[str]:
    """Split a comma-separated argument list, respecting quoted strings."""
    parts: list[str] = []
    depth_str = False
    current: list[str] = []
    for ch in text:
        if ch == "'":
            depth_str = not depth_str
            current.append(ch)
        elif ch == "," and not depth_str:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


#: Interned atoms: ``parse_atom`` is a pure function of the token text,
#: and both :class:`Const` and :class:`Local` are frozen, so recurring
#: tokens (``v0``, ``this``, ``0``, ``null``...) share one value object
#: across methods and apps instead of allocating per occurrence.  Bounded
#: so a pathological corpus of distinct literals cannot grow it forever.
_ATOM_CACHE: dict[str, Value] = {}
_ATOM_CACHE_MAX = 65536


def _parse_atom_uncached(token: str, line_no: int) -> Value:
    if token == "null":
        return Const(None)
    if token == "true":
        return Const(True)
    if token == "false":
        return Const(False)
    if _INT_RE.match(token):
        return Const(int(token))
    if _FLOAT_RE.match(token):
        return Const(float(token))
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return Const(token[1:-1])
    if "." not in token and _IDENT_RE.match(token):
        return Local(token)
    raise ParseError(f"cannot parse atom {token!r}", line_no)


def parse_atom(token: str, line_no: int = 0) -> Value:
    token = token.strip()
    value = _ATOM_CACHE.get(token)
    if value is None:
        value = _parse_atom_uncached(token, line_no)
        if len(_ATOM_CACHE) < _ATOM_CACHE_MAX:
            _ATOM_CACHE[token] = value
    return value


def _parse_invoke(text: str, line_no: int) -> InvokeExpr:
    rest = text[len("invoke "):].strip()
    try:
        kind, rest = rest.split(None, 1)
    except ValueError:
        raise ParseError("malformed invoke", line_no, text) from None
    return_type = "java.lang.Object"
    if "->" in rest:
        rest, ret = rest.rsplit("->", 1)
        return_type = ret.strip()
        rest = rest.strip()
    open_paren = rest.index("(")
    if not rest.endswith(")"):
        raise ParseError("invoke missing closing parenthesis", line_no, text)
    callee_text = rest[:open_paren]
    args_text = rest[open_paren + 1 : -1]
    match = _CALLEE_RE.match(callee_text)
    if match is None:
        raise ParseError(f"malformed invoke callee {callee_text!r}", line_no)
    args = tuple(parse_atom(a, line_no) for a in _split_args(args_text))
    sig = MethodSig(
        match.group("cls"),
        match.group("name"),
        tuple("?" for _ in args),
        return_type,
    )
    base = Local(match.group("base")) if match.group("base") else None
    try:
        return InvokeExpr(kind, base, sig, args)
    except ValueError as exc:  # unknown kind, receiver mismatch
        raise ParseError(str(exc), line_no, text) from None


def _rhs_new(text: str, line_no: int) -> Value:
    return NewExpr(text[4:].strip())


def _rhs_newarray(text: str, line_no: int) -> Value:
    _, elem, size = text.split(None, 2)
    return NewArrayExpr(elem, parse_atom(size, line_no))


def _rhs_getstatic(text: str, line_no: int) -> Value:
    qualified = text[len("getstatic "):].strip()
    cls, _, name = qualified.rpartition(".")
    return FieldRef(None, FieldSig(cls, name))


def _rhs_getfield(text: str, line_no: int) -> Value:
    _, base, qualified = text.split(None, 2)
    cls, _, name = qualified.rpartition(".")
    return FieldRef(Local(base), FieldSig(cls, name))


def _rhs_aload(text: str, line_no: int) -> Value:
    _, base, index = text.split(None, 2)
    return ArrayRef(Local(base), parse_atom(index, line_no))


def _rhs_cast(text: str, line_no: int) -> Value:
    _, type_name, value = text.split(None, 2)
    return CastExpr(type_name, parse_atom(value, line_no))


def _rhs_unary(text: str, line_no: int) -> Value:
    op, operand = text.split(None, 1)
    return UnaryExpr(op, parse_atom(operand, line_no))


def _rhs_lengthof(text: str, line_no: int) -> Value:
    return LengthExpr(parse_atom(text[len("lengthof "):], line_no))


def _rhs_catch(text: str, line_no: int) -> Value:
    return CaughtExceptionExpr(text[len("catch "):].strip())


#: Right-hand-side dispatch keyed on the leading token (the text up to the
#: first space) — replaces the former ``str.startswith`` chain.
_RHS_DISPATCH = {
    "new": _rhs_new,
    "newarray": _rhs_newarray,
    "invoke": _parse_invoke,
    "getstatic": _rhs_getstatic,
    "getfield": _rhs_getfield,
    "aload": _rhs_aload,
    "cast": _rhs_cast,
    "neg": _rhs_unary,
    "not": _rhs_unary,
    "lengthof": _rhs_lengthof,
    "catch": _rhs_catch,
}


def _parse_rhs(text: str, line_no: int) -> Value:
    text = text.strip()
    head, sep, _rest = text.partition(" ")
    if sep:
        handler = _RHS_DISPATCH.get(head)
        if handler is not None:
            return handler(text, line_no)
    if " instanceof " in text:
        value, type_name = text.split(" instanceof ", 1)
        return InstanceOfExpr(parse_atom(value, line_no), type_name.strip())
    # Binary expression: "a OP b" with a single space-separated operator.
    # String constants never contain spaces around operators in our corpus,
    # but guard against splitting inside quotes anyway.
    if sep and not (text.startswith("'") and text.endswith("'")):
        for sep_text, op in _BINARY_SEPS:
            if sep_text in text:
                left, right = text.split(sep_text, 1)
                return BinaryExpr(
                    op, parse_atom(left, line_no), parse_atom(right, line_no)
                )
    return parse_atom(text, line_no)


def _stmt_return(line: str, line_no: int) -> Stmt:
    return ReturnStmt(parse_atom(line[7:], line_no))


def _stmt_throw(line: str, line_no: int) -> Stmt:
    return ThrowStmt(parse_atom(line[6:], line_no))


def _stmt_goto(line: str, line_no: int) -> Stmt:
    return GotoStmt(line[5:].strip())


def _stmt_if(line: str, line_no: int) -> Stmt:
    match = _IF_RE.match(line)
    if match is None:
        raise ParseError("malformed if", line_no, line)
    left, op, right, target = match.groups()
    if op not in COND_OPS:
        raise ParseError(f"unknown condition operator {op!r}", line_no)
    return IfStmt(
        ConditionExpr(op, parse_atom(left, line_no), parse_atom(right, line_no)),
        target,
    )


def _stmt_invoke(line: str, line_no: int) -> Stmt:
    return InvokeStmt(_parse_invoke(line, line_no))


def _stmt_putfield(line: str, line_no: int) -> Stmt:
    head, rhs = line.split(" = ", 1)
    _, base, qualified = head.split(None, 2)
    cls, _, name = qualified.rpartition(".")
    return AssignStmt(
        FieldRef(Local(base), FieldSig(cls, name)), parse_atom(rhs, line_no)
    )


def _stmt_putstatic(line: str, line_no: int) -> Stmt:
    head, rhs = line.split(" = ", 1)
    qualified = head[len("putstatic "):].strip()
    cls, _, name = qualified.rpartition(".")
    return AssignStmt(FieldRef(None, FieldSig(cls, name)), parse_atom(rhs, line_no))


def _stmt_astore(line: str, line_no: int) -> Stmt:
    head, rhs = line.split(" = ", 1)
    _, base, index = head.split(None, 2)
    return AssignStmt(
        ArrayRef(Local(base), parse_atom(index, line_no)),
        parse_atom(rhs, line_no),
    )


#: Statement dispatch keyed on the leading token.  Only consulted after
#: the bare-local assignment test, so keyword-named locals still parse.
_STMT_DISPATCH = {
    "return": _stmt_return,
    "throw": _stmt_throw,
    "goto": _stmt_goto,
    "if": _stmt_if,
    "invoke": _stmt_invoke,
    "putfield": _stmt_putfield,
    "putstatic": _stmt_putstatic,
    "astore": _stmt_astore,
}


#: Interned statements: every :class:`Stmt` subclass is a frozen dataclass
#: over frozen values, and parsing is a pure function of the (stripped)
#: line text, so recurring lines — bare ``return``, common invokes, field
#: loads — share one statement object across methods and apps.  Bounded
#: like the atom cache.
_STMT_CACHE: dict[str, Stmt] = {}
_STMT_CACHE_MAX = 65536


def parse_stmt(line: str, line_no: int = 0) -> Stmt:
    """Parse one statement line (label lines are handled by the caller)."""
    stmt = _STMT_CACHE.get(line)
    if stmt is None:
        stmt = _parse_stmt_uncached(line, line_no)
        if len(_STMT_CACHE) < _STMT_CACHE_MAX:
            _STMT_CACHE[line] = stmt
    return stmt


def _parse_stmt_uncached(line: str, line_no: int) -> Stmt:
    # Bare-local assignment wins over keyword dispatch: locals may shadow
    # statement keywords ("if = 0"), and no keyword statement ever has
    # "=" as its second token, so "<ident> = rhs" is unambiguous.
    if _ASSIGN_RE.match(line) is not None:
        target, rhs = line.split(" = ", 1)
        return AssignStmt(Local(target), _parse_rhs(rhs, line_no))
    if line == "nop":
        return NopStmt()
    if line == "return":
        return ReturnStmt()
    head, sep, _rest = line.partition(" ")
    if sep:
        handler = _STMT_DISPATCH.get(head)
        if handler is not None:
            return handler(line, line_no)
    if " = " in line:
        target, rhs = line.split(" = ", 1)
        target = target.strip()
        if not _IDENT_RE.match(target) or "." in target:
            raise ParseError(f"bad assignment target {target!r}", line_no, line)
        return AssignStmt(Local(target), _parse_rhs(rhs, line_no))
    raise ParseError("unrecognised statement", line_no, line)


class _Cursor:
    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.pos = 0

    def next_meaningful(self) -> Optional[tuple[int, str]]:
        while self.pos < len(self.lines):
            raw = self.lines[self.pos]
            self.pos += 1
            line = _strip_comment(raw)
            if line:
                return self.pos, line
        return None

    def peek(self) -> Optional[tuple[int, str]]:
        saved = self.pos
        result = self.next_meaningful()
        self.pos = saved
        return result


def _parse_method(cursor: _Cursor, class_name: str, header: str, line_no: int) -> IRMethod:
    match = _METHOD_RE.match(header)
    if match is None:
        raise ParseError("malformed method header", line_no, header)
    params: list[Local] = []
    param_types: list[str] = []
    params_text = match.group("params").strip()
    if params_text:
        for part in params_text.split(","):
            pieces = part.split()
            if len(pieces) != 2:
                raise ParseError(f"malformed parameter {part!r}", line_no)
            param_types.append(pieces[0])
            params.append(Local(pieces[1], pieces[0]))
    sig = MethodSig(
        class_name, match.group("name"), tuple(param_types), match.group("ret")
    )
    statements: list[Stmt] = []
    labels: dict[str, int] = {}
    traps: list[Trap] = []
    while True:
        item = cursor.next_meaningful()
        if item is None:
            raise ParseError("unexpected end of input in method body", line_no)
        stmt_no, line = item
        if line == "}":
            break
        label_match = _LABEL_RE.match(line)
        if label_match is not None:
            name = label_match.group(1)
            if name in labels:
                raise ParseError(f"duplicate label {name!r}", stmt_no)
            labels[name] = len(statements)
            continue
        trap_match = _TRAP_RE.match(line)
        if trap_match is not None:
            traps.append(
                Trap(
                    trap_match.group("begin"),
                    trap_match.group("end"),
                    trap_match.group("handler"),
                    trap_match.group("exc"),
                )
            )
            continue
        statements.append(parse_stmt(line, stmt_no))
    method = IRMethod(
        sig,
        params,
        statements,
        labels,
        traps,
        is_static=bool(match.group("static")),
    )
    method.validate()
    return method


def _parse_class_body(cursor: _Cursor, header: str, line_no: int) -> IRClass:
    match = _CLASS_RE.match(header)
    if match is None:
        raise ParseError("malformed class header", line_no, header)
    interfaces: tuple[str, ...] = ()
    if match.group("ifaces"):
        interfaces = tuple(
            part.strip() for part in match.group("ifaces").split(",") if part.strip()
        )
    cls = IRClass(
        match.group("name"),
        match.group("super") or "java.lang.Object",
        interfaces,
        is_interface=match.group("kind") == "interface",
    )
    while True:
        item = cursor.next_meaningful()
        if item is None:
            raise ParseError("unexpected end of input in class body", line_no)
        member_no, line = item
        if line == "}":
            break
        if line.startswith("field "):
            pieces = line.split()
            if len(pieces) != 3:
                raise ParseError("malformed field", member_no, line)
            cls.add_field(FieldSig(cls.name, pieces[2], pieces[1]))
            continue
        if line.startswith("method "):
            cls.add_method(_parse_method(cursor, cls.name, line, member_no))
            continue
        raise ParseError("unrecognised class member", member_no, line)
    return cls


def parse_class(text: str) -> IRClass:
    """Parse exactly one class definition."""
    classes = parse_classes(text)
    if len(classes) != 1:
        raise ParseError(f"expected exactly one class, found {len(classes)}", 0)
    return classes[0]


def parse_classes(text: str) -> list[IRClass]:
    """Parse a sequence of class definitions."""
    cursor = _Cursor(text)
    classes: list[IRClass] = []
    while True:
        item = cursor.next_meaningful()
        if item is None:
            return classes
        line_no, line = item
        if line.startswith(("class ", "interface ")):
            classes.append(_parse_class_body(cursor, line, line_no))
        else:
            raise ParseError("expected class or interface", line_no, line)
