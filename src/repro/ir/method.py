"""Method bodies: statement lists, labels, and exception traps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .statements import GotoStmt, IfStmt, ReturnStmt, Stmt, ThrowStmt
from .values import InvokeExpr, Local, MethodSig, THROWABLE


@dataclass(frozen=True, slots=True)
class Trap:
    """A protected region: statements in ``[begin, end)`` (by label) whose
    exceptions of ``exc_type`` are routed to the handler at ``handler``.

    This is the Jimple/DEX ``try/catch`` encoding: ranges over the flat
    statement list rather than nested syntax.
    """

    begin: str
    end: str
    handler: str
    exc_type: str = THROWABLE


class IRMethod:
    """A method body in the IR.

    Parameters are ordinary locals listed in ``params``; instance methods
    additionally have the implicit local ``this``.  ``labels`` maps a label
    name to the index of the statement it precedes.
    """

    __slots__ = (
        "sig",
        "params",
        "statements",
        "labels",
        "traps",
        "is_static",
        "modifiers",
        "_cached_key",
        "_validated",
    )

    def __init__(
        self,
        sig: MethodSig,
        params: list[Local],
        statements: list[Stmt],
        labels: Optional[dict[str, int]] = None,
        traps: Optional[list[Trap]] = None,
        is_static: bool = False,
        modifiers: frozenset[str] = frozenset(),
    ) -> None:
        self.sig = sig
        self.params = list(params)
        self.statements = list(statements)
        self.labels = dict(labels or {})
        self.traps = list(traps or [])
        self.is_static = is_static
        self.modifiers = modifiers
        # Interned (class, name, arity) key; the signature is immutable
        # (the patcher mutates bodies, never signatures), so the key is
        # computed once and shared by every call-graph/artifact lookup.
        self._cached_key: Optional[tuple[str, str, int]] = None
        # Set by validate() on success.  Calling validate() always runs
        # the full structural check (mutators re-validate explicitly after
        # editing a body); the flag lets *consumers* — APK validation and
        # CFG construction — skip re-checking an unchanged body.
        self._validated = False

    # ------------------------------------------------------------------
    # Introspection helpers used pervasively by the analyses.
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.sig.name

    @property
    def class_name(self) -> str:
        return self.sig.class_name

    def label_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(
                f"undefined label {label!r} in {self.sig.qualified_name}"
            ) from None

    def labels_at(self, index: int) -> list[str]:
        return [name for name, idx in self.labels.items() if idx == index]

    def invoke_sites(self) -> Iterator[tuple[int, InvokeExpr]]:
        """Yield ``(statement_index, invoke_expr)`` for every call site."""
        for idx, stmt in enumerate(self.statements):
            expr = stmt.invoke()
            if expr is not None:
                yield idx, expr

    def trap_handlers(self) -> set[int]:
        """Statement indices that begin an exception handler."""
        return {self.label_index(t.handler) for t in self.traps}

    def traps_covering(self, index: int) -> list[Trap]:
        """Traps whose protected range contains statement ``index``."""
        covering = []
        for trap in self.traps:
            begin = self.label_index(trap.begin)
            end = self.label_index(trap.end)
            if begin <= index < end:
                covering.append(trap)
        return covering

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems (dangling labels,
        out-of-range traps, fall-through off the end of the body)."""
        n = len(self.statements)
        if n == 0:
            raise ValueError(f"{self.sig.qualified_name}: empty body")
        for name, idx in self.labels.items():
            if not 0 <= idx <= n:
                raise ValueError(
                    f"{self.sig.qualified_name}: label {name!r} -> {idx} "
                    f"out of range (body has {n} statements)"
                )
        for idx, stmt in enumerate(self.statements):
            target = None
            if isinstance(stmt, (GotoStmt, IfStmt)):
                target = stmt.target
            if target is not None and target not in self.labels:
                raise ValueError(
                    f"{self.sig.qualified_name}: statement {idx} branches to "
                    f"undefined label {target!r}"
                )
        for trap in self.traps:
            for label in (trap.begin, trap.end, trap.handler):
                if label not in self.labels:
                    raise ValueError(
                        f"{self.sig.qualified_name}: trap references undefined "
                        f"label {label!r}"
                    )
            if self.label_index(trap.begin) >= self.label_index(trap.end):
                raise ValueError(
                    f"{self.sig.qualified_name}: empty or inverted trap range "
                    f"{trap.begin}..{trap.end}"
                )
        last = self.statements[-1]
        if not isinstance(last, (ReturnStmt, GotoStmt, ThrowStmt)):
            raise ValueError(
                f"{self.sig.qualified_name}: control falls off the end of the "
                f"body (last statement is {last})"
            )
        self._validated = True

    def __repr__(self) -> str:
        return f"<IRMethod {self.sig} ({len(self.statements)} stmts)>"
