"""In-place IR method transformation: statement insertion with label and
trap maintenance.

Branch targets and trap ranges are expressed through labels, so inserting
statements only requires shifting the label map: every label at or beyond
the insertion point moves down by the inserted length.  Consequences of
that convention (which are exactly what the patcher wants):

* code inserted at a *label* position executes on the fall-through path
  but is **skipped by branches** to that label — a guard inserted at a
  loop header runs once, not per iteration;
* code inserted inside a trap's protected range stays protected; code
  inserted at the range's begin label lands *outside* it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .method import IRMethod
from .statements import Stmt


def insert_statements(
    method: IRMethod,
    index: int,
    statements: Sequence[Stmt],
    new_labels: Optional[dict[str, int]] = None,
    retarget_labels_at_index: bool = False,
) -> None:
    """Insert ``statements`` before statement ``index`` (in place).

    ``new_labels`` maps fresh label names to positions *relative to the
    insertion point* (``0`` = first inserted statement; ``len(statements)``
    = the original statement at ``index``).  Fresh label names must not
    collide with existing ones.

    Labels bound exactly at ``index`` shift past the inserted block by
    default, so branches to them *skip* the insertion (right for guards:
    a loop back-edge must not re-run them).  With
    ``retarget_labels_at_index=True`` those labels stay put and branches
    land *on* the inserted block (right for configuration that must
    execute on every path reaching the original statement).
    """
    if not 0 <= index <= len(method.statements):
        raise IndexError(
            f"insertion index {index} out of range "
            f"(body has {len(method.statements)} statements)"
        )
    shift = len(statements)
    if shift == 0:
        return
    for name in new_labels or ():
        if name in method.labels:
            raise ValueError(f"label {name!r} already exists")
    method.statements[index:index] = list(statements)
    for name, position in method.labels.items():
        threshold = index + 1 if retarget_labels_at_index else index
        if position >= threshold:
            method.labels[name] = position + shift
    for name, relative in (new_labels or {}).items():
        if not 0 <= relative <= shift:
            raise ValueError(
                f"relative label position {relative} outside inserted block"
            )
        method.labels[name] = index + relative


def fresh_label(method: IRMethod, hint: str = "patch") -> str:
    """A label name unused in ``method``."""
    counter = 0
    while f"{hint}{counter}" in method.labels:
        counter += 1
    return f"{hint}{counter}"
