"""Statements of the Jimple-like IR.

A method body is a flat list of statements; control flow is expressed with
labels (held by the enclosing :class:`repro.ir.method.IRMethod`), ``goto``
and conditional ``if`` branches, mirroring how Dalvik bytecode lowers
structured Java control flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .values import (
    ArrayRef,
    ConditionExpr,
    Expr,
    FieldRef,
    InvokeExpr,
    Local,
    Value,
    locals_in,
)

#: Things that may appear on the left-hand side of an assignment.
LValue = Union[Local, FieldRef, ArrayRef]


class Stmt:
    """Base class of all IR statements."""

    __slots__ = ()

    def defs(self) -> tuple[Local, ...]:
        """Locals written by this statement."""
        return ()

    def uses(self) -> tuple[Local, ...]:
        """Locals read by this statement."""
        return ()

    def invoke(self) -> Optional[InvokeExpr]:
        """The invocation embedded in this statement, if any."""
        return None

    @property
    def is_terminator(self) -> bool:
        """True when control never falls through to the next statement."""
        return False


@dataclass(frozen=True, slots=True)
class AssignStmt(Stmt):
    """``target = value`` where value may be a composite expression."""

    target: LValue
    value: Value

    def defs(self) -> tuple[Local, ...]:
        return (self.target,) if isinstance(self.target, Local) else ()

    def uses(self) -> tuple[Local, ...]:
        used = list(locals_in(self.value))
        # Field/array stores read their base and index.
        if not isinstance(self.target, Local):
            used.extend(locals_in(self.target))
        return tuple(used)

    def invoke(self) -> Optional[InvokeExpr]:
        return self.value if isinstance(self.value, InvokeExpr) else None

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass(frozen=True, slots=True)
class InvokeStmt(Stmt):
    """A call whose return value (if any) is discarded."""

    expr: InvokeExpr

    def uses(self) -> tuple[Local, ...]:
        return locals_in(self.expr)

    def invoke(self) -> Optional[InvokeExpr]:
        return self.expr

    def __str__(self) -> str:
        return f"invoke {self.expr}"


@dataclass(frozen=True, slots=True)
class IfStmt(Stmt):
    """``if cond goto target`` — falls through when the condition is false."""

    condition: ConditionExpr
    target: str

    def uses(self) -> tuple[Local, ...]:
        return locals_in(self.condition)

    def __str__(self) -> str:
        return f"if {self.condition} goto {self.target}"


@dataclass(frozen=True, slots=True)
class GotoStmt(Stmt):
    target: str

    @property
    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True, slots=True)
class ReturnStmt(Stmt):
    value: Optional[Value] = None

    def uses(self) -> tuple[Local, ...]:
        return locals_in(self.value) if self.value is not None else ()

    @property
    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return "return" if self.value is None else f"return {self.value}"


@dataclass(frozen=True, slots=True)
class ThrowStmt(Stmt):
    value: Value

    def uses(self) -> tuple[Local, ...]:
        return locals_in(self.value)

    @property
    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"throw {self.value}"


@dataclass(frozen=True, slots=True)
class NopStmt(Stmt):
    """No-op; also used as a label anchor for empty join points."""

    def __str__(self) -> str:
        return "nop"


def stmt_reads_expr(stmt: Stmt) -> Optional[Expr]:
    """The composite expression evaluated by ``stmt``, if any."""
    if isinstance(stmt, AssignStmt) and isinstance(stmt.value, Expr):
        return stmt.value
    if isinstance(stmt, InvokeStmt):
        return stmt.expr
    if isinstance(stmt, IfStmt):
        return stmt.condition
    return None
