"""Values and expressions of the Jimple-like intermediate representation.

The IR is a typed-by-name three-address code: every operand of a statement
is either a :class:`Local`, a :class:`Const`, or one of a small set of
composite expressions (invoke, new, field access, binary operation, ...).
This mirrors the Jimple representation Soot produces from Dalvik bytecode,
which is what the original NChecker analyses operated on.

Types are represented as plain strings (fully qualified Java-style class
names such as ``"com.android.volley.RequestQueue"`` or primitive names
such as ``"int"``).  The analyses in :mod:`repro.core` never need a full
type system — they match against library signatures — so a nominal
representation keeps the substrate honest without gratuitous machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

#: Java-style primitive and common reference type names used throughout.
VOID = "void"
INT = "int"
LONG = "long"
BOOLEAN = "boolean"
STRING = "java.lang.String"
OBJECT = "java.lang.Object"
THROWABLE = "java.lang.Throwable"
IO_EXCEPTION = "java.io.IOException"


@dataclass(frozen=True, slots=True)
class MethodSig:
    """A fully qualified method signature.

    ``class_name`` is the *declaring* class as written at the call site
    (virtual dispatch is resolved later by the call-graph builder).
    """

    class_name: str
    name: str
    param_types: tuple[str, ...] = ()
    return_type: str = VOID

    @property
    def arity(self) -> int:
        return len(self.param_types)

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    def __str__(self) -> str:
        params = ", ".join(self.param_types)
        return f"{self.return_type} {self.class_name}.{self.name}({params})"


@dataclass(frozen=True, slots=True)
class FieldSig:
    """A fully qualified field signature."""

    class_name: str
    name: str
    type_name: str = OBJECT

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"


class Value:
    """Base class for every IR value (marker; no behaviour)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Local(Value):
    """A method-local variable (parameters and ``this`` are locals too)."""

    name: str
    type_hint: Optional[str] = None

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        # Locals are identified by name alone within a method; the type
        # hint is advisory (the parser rarely knows it).
        return isinstance(other, Local) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Local", self.name))


#: The implicit receiver local of instance methods.
THIS = Local("this")


@dataclass(frozen=True, slots=True)
class Const(Value):
    """A literal constant: int, float, bool, str, or None (Java null)."""

    value: Union[int, float, bool, str, None]

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


NULL = Const(None)


class Expr(Value):
    """Base class for composite (non-atomic) right-hand-side values."""

    __slots__ = ()

    def operands(self) -> tuple[Value, ...]:
        """Atomic values read by this expression (for def-use analysis)."""
        return ()


@dataclass(frozen=True, slots=True)
class NewExpr(Expr):
    """Object allocation: ``new C``. Constructor call is a separate invoke."""

    class_name: str

    def __str__(self) -> str:
        return f"new {self.class_name}"


@dataclass(frozen=True, slots=True)
class NewArrayExpr(Expr):
    """Array allocation: ``new T[size]``."""

    element_type: str
    size: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.size,)

    def __str__(self) -> str:
        return f"new {self.element_type}[{self.size}]"


#: Invocation kinds, mirroring JVM dispatch semantics.
KIND_VIRTUAL = "virtual"
KIND_STATIC = "static"
KIND_SPECIAL = "special"  # constructors and super calls
KIND_INTERFACE = "interface"

INVOKE_KINDS = frozenset({KIND_VIRTUAL, KIND_STATIC, KIND_SPECIAL, KIND_INTERFACE})


@dataclass(frozen=True, slots=True)
class InvokeExpr(Expr):
    """A method invocation.

    ``base`` is the receiver local for instance calls and ``None`` for
    static calls.  ``args`` are atomic values (locals or constants) —
    the three-address property.
    """

    kind: str
    base: Optional[Local]
    sig: MethodSig
    args: tuple[Value, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in INVOKE_KINDS:
            raise ValueError(f"unknown invoke kind: {self.kind!r}")
        if self.kind == KIND_STATIC and self.base is not None:
            raise ValueError("static invoke must not have a receiver")
        if self.kind != KIND_STATIC and self.base is None:
            raise ValueError(f"{self.kind} invoke requires a receiver")

    def operands(self) -> tuple[Value, ...]:
        if self.base is None:
            return self.args
        return (self.base, *self.args)

    @property
    def is_constructor(self) -> bool:
        return self.sig.name == "<init>"

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.base is None:
            return f"{self.sig.class_name}.{self.sig.name}({args})"
        return f"{self.base}.{self.sig.name}({args})"


@dataclass(frozen=True, slots=True)
class FieldRef(Expr):
    """Instance (``base != None``) or static (``base == None``) field access.

    Usable both as an rvalue and as the target of an assignment.
    """

    base: Optional[Local]
    sig: FieldSig

    def operands(self) -> tuple[Value, ...]:
        return () if self.base is None else (self.base,)

    def __str__(self) -> str:
        owner = self.sig.class_name if self.base is None else str(self.base)
        return f"{owner}.{self.sig.name}"


@dataclass(frozen=True, slots=True)
class ArrayRef(Expr):
    """Array element access ``base[index]`` (rvalue or assignment target)."""

    base: Local
    index: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.base, self.index)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


#: Binary operators (a deliberately small, Jimple-flavoured set).
BINARY_OPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "cmp"})


@dataclass(frozen=True, slots=True)
class BinaryExpr(Expr):
    op: str
    left: Value
    right: Value

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator: {self.op!r}")

    def operands(self) -> tuple[Value, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class UnaryExpr(Expr):
    op: str  # "neg" or "not"
    operand: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op} {self.operand}"


@dataclass(frozen=True, slots=True)
class CastExpr(Expr):
    type_name: str
    value: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"({self.type_name}) {self.value}"


@dataclass(frozen=True, slots=True)
class InstanceOfExpr(Expr):
    value: Value
    type_name: str

    def operands(self) -> tuple[Value, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"{self.value} instanceof {self.type_name}"


@dataclass(frozen=True, slots=True)
class LengthExpr(Expr):
    """Array length ``lengthof v``."""

    value: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"lengthof {self.value}"


@dataclass(frozen=True, slots=True)
class CaughtExceptionExpr(Expr):
    """The ``@caughtexception`` pseudo-value bound at a handler entry."""

    exception_type: str = THROWABLE

    def __str__(self) -> str:
        return f"@caughtexception {self.exception_type}"


#: Condition operators for `if` statements.
COND_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})

_COND_NEGATION = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


@dataclass(frozen=True, slots=True)
class ConditionExpr(Expr):
    """A branch condition ``left op right`` (operands are atomic)."""

    op: str
    left: Value
    right: Value

    def __post_init__(self) -> None:
        if self.op not in COND_OPS:
            raise ValueError(f"unknown condition operator: {self.op!r}")

    def operands(self) -> tuple[Value, ...]:
        return (self.left, self.right)

    def negate(self) -> "ConditionExpr":
        return ConditionExpr(_COND_NEGATION[self.op], self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def locals_in(value: Value) -> tuple[Local, ...]:
    """All locals read by ``value`` (the value itself if it is a local)."""
    if isinstance(value, Local):
        return (value,)
    if isinstance(value, Expr):
        found: list[Local] = []
        for op in value.operands():
            found.extend(locals_in(op))
        return tuple(found)
    return ()
