"""Strongly connected components of the call graph (Tarjan, iterative).

The interprocedural summary engine (`repro.dataflow.summaries`) computes
per-method summaries bottom-up: a method's summary depends only on its
callees' summaries, so callees must be processed first.  Tarjan's
algorithm emits SCCs of the condensation DAG in reverse topological
order — every component is emitted before any component with an edge
*into* it — which for caller→callee edges is exactly callee-first
(bottom-up) order.  Mutual recursion lands in one multi-member SCC,
which the engine solves by fixpoint iteration (widening to ⊤ if it
fails to settle).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence, TypeVar

Node = TypeVar("Node", bound=Hashable)


def strongly_connected_components(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> list[tuple[Node, ...]]:
    """SCCs of the graph, in reverse topological (callee-first) order.

    Iterative Tarjan: app call graphs can chain hundreds of frames deep
    (generated corpus apps, pathological wrappers), which would blow the
    interpreter's recursion limit.
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    sccs: list[tuple[Node, ...]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        # Each work item is (node, iterator over remaining successors).
        work: list[tuple[Node, Iterable[Node]]] = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(component))
    return sccs


def condensation_order(
    nodes: Sequence[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> tuple[list[tuple[Node, ...]], dict[Node, int]]:
    """(SCCs in callee-first order, node → SCC position map)."""
    sccs = strongly_connected_components(nodes, successors)
    position = {node: i for i, scc in enumerate(sccs) for node in scc}
    return sccs, position


def condensation_wavefronts(
    scc_indices: Iterable[int],
    sccs: Sequence[tuple[Node, ...]],
    position: dict[Node, int],
    successors: Callable[[Node], Iterable[Node]],
) -> list[list[int]]:
    """Group the given SCCs of a condensation into topological *wavefronts*.

    Wavefront ``k`` holds every selected SCC whose longest chain of
    selected-SCC dependencies (condensation edges to other selected SCCs)
    has length ``k``.  All SCCs within one wavefront are mutually
    independent, so a scheduler may evaluate them concurrently; processing
    wavefronts in order preserves callee-first (bottom-up) evaluation.
    SCC indices inside each wavefront are sorted, so the decomposition is
    deterministic for a deterministic condensation.
    """
    selected = set(scc_indices)
    depth: dict[int, int] = {}
    for idx in sorted(selected):  # callee-first: deps have smaller indices
        level = 0
        for node in sccs[idx]:
            for succ in successors(node):
                succ_idx = position.get(succ)
                if succ_idx is None or succ_idx == idx or succ_idx not in selected:
                    continue
                succ_level = depth.get(succ_idx)
                if succ_level is not None and succ_level >= level:
                    level = succ_level + 1
        depth[idx] = level
    fronts: list[list[int]] = []
    for idx in sorted(depth):
        level = depth[idx]
        while len(fronts) <= level:
            fronts.append([])
        fronts[level].append(idx)
    return fronts
