"""Entry-point discovery (paper §4.4.2).

Entry points are methods the Android framework calls into: lifecycle
methods of manifest-declared components, and UI/event callbacks.  Each
entry point carries the *context* NChecker later uses to classify
requests as user-initiated (Activity / UI callback) vs. background
(Service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..app.apk import APK
from ..app.components import (
    ComponentKind,
    LIFECYCLE_METHODS,
    UI_CALLBACK_METHODS,
)
from ..ir.method import IRMethod

#: Call-graph node key: (class name, method name, arity).
MethodKey = tuple[str, str, int]


def method_key(method: IRMethod) -> MethodKey:
    key = method._cached_key
    if key is None:
        sig = method.sig
        key = (sig.class_name, sig.name, sig.arity)
        method._cached_key = key
    return key


@dataclass(frozen=True)
class EntryPoint:
    """A framework-invoked method and the context it implies."""

    key: MethodKey
    component_kind: Optional[ComponentKind]
    #: True when this entry is a direct user interaction (click etc.);
    #: lifecycle methods of Activities are user-facing but not direct
    #: interactions — they still count as user-initiated per the paper.
    is_ui_callback: bool

    @property
    def user_initiated(self) -> bool:
        """Paper §4.4.2: requests from Activities (or UI callbacks) are
        user-initiated and time-sensitive; Service-originated requests are
        background."""
        if self.is_ui_callback:
            return True
        return self.component_kind is ComponentKind.ACTIVITY

    @property
    def background(self) -> bool:
        return self.component_kind is ComponentKind.SERVICE


def discover_entry_points(apk: APK) -> list[EntryPoint]:
    """All framework entry points of the app."""
    entries: list[EntryPoint] = []
    seen: set[MethodKey] = set()

    def add(method: IRMethod, kind: Optional[ComponentKind], is_ui: bool) -> None:
        key = method_key(method)
        if key not in seen:
            seen.add(key)
            entries.append(EntryPoint(key, kind, is_ui))

    for cls in apk.classes():
        kind = apk.component_kind_of(cls.name)
        lifecycle = LIFECYCLE_METHODS.get(kind, ()) if kind else ()
        for method in cls.methods():
            if method.name in UI_CALLBACK_METHODS:
                # UI callbacks inherit the kind of their declaring class
                # when it is a component, else Activity-context is assumed
                # (listeners are registered from Activities).
                add(method, kind or ComponentKind.ACTIVITY, is_ui=True)
            elif kind is not None and method.name in lifecycle:
                add(method, kind, is_ui=False)
    return entries


def entry_points_by_key(apk: APK) -> dict[MethodKey, EntryPoint]:
    return {entry.key: entry for entry in discover_entry_points(apk)}
