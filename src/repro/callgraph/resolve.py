"""Local value origin resolution (allocation-site class recovery).

The call-graph builder and several checks need to answer: *what class of
object does this local hold?*  E.g. at ``task.execute()`` we must find the
``new MyTask()`` allocation to wire the AsyncTask pseudo-edges, and at
``queue.add(req)`` we must find the request's allocation to discover its
listeners.  This is intraprocedural allocation-site analysis on top of
:func:`repro.dataflow.taint.trace_origins`.
"""

from __future__ import annotations

from typing import Optional

from ..cfg.graph import CFG
from ..dataflow.reaching import DefUseChains
from ..dataflow.taint import trace_origins
from ..ir.method import IRMethod
from ..ir.statements import AssignStmt
from ..ir.values import FieldRef, InvokeExpr, Local, NewExpr


class MethodAnalysisCache:
    """Caches per-method CFGs, def-use chains, and constant-propagation
    results across the whole scan.

    Building a CFG and its dataflow fixpoints is the dominant cost of
    a scan; every check shares this cache through the checker context.
    """

    def __init__(self) -> None:
        self._cfgs: dict[int, CFG] = {}
        self._defuse: dict[int, DefUseChains] = {}
        self._constants: dict[int, object] = {}

    def cfg(self, method: IRMethod) -> CFG:
        key = id(method)
        found = self._cfgs.get(key)
        if found is None:
            found = self._cfgs[key] = CFG(method)
        return found

    def defuse(self, method: IRMethod) -> DefUseChains:
        key = id(method)
        found = self._defuse.get(key)
        if found is None:
            found = self._defuse[key] = DefUseChains(self.cfg(method))
        return found

    def constants(self, method: IRMethod):
        """The solved :class:`~repro.dataflow.constants.
        ConstantPropagation` for ``method`` — a pure per-method fixpoint
        several checks re-derive for the same hot methods."""
        from ..dataflow.constants import ConstantPropagation

        key = id(method)
        found = self._constants.get(key)
        if found is None:
            found = self._constants[key] = ConstantPropagation(self.cfg(method))
        return found

    def invalidate(self, method: IRMethod) -> None:
        """Drop the cached analyses of one (mutated) method."""
        key = id(method)
        self._cfgs.pop(key, None)
        self._defuse.pop(key, None)
        self._constants.pop(key, None)


def origin_classes(
    method: IRMethod,
    node: int,
    local: Local,
    cache: Optional[MethodAnalysisCache] = None,
    field_types: Optional[dict[tuple[str, str], str]] = None,
) -> set[str]:
    """Classes the object in ``local`` at statement ``node`` may be an
    instance of, judged by reachable allocation sites.

    Field loads are resolved through ``field_types`` — a map from
    ``(class, field)`` to the class of objects stored there, built by a
    cheap whole-app pre-pass (see :func:`collect_field_types`).  Unknown
    origins yield nothing (the paper's analysis is similarly best-effort
    and reports inter-component flows as a limitation).
    """
    cache = cache or MethodAnalysisCache()
    cfg = cache.cfg(method)
    defuse = cache.defuse(method)
    classes: set[str] = set()
    for origin in trace_origins(cfg, node, local.name, defuse):
        if origin < 0:
            param_local = _param_at(method, local.name)
            if param_local is not None and param_local.type_hint:
                classes.add(param_local.type_hint)
            continue
        stmt = method.statements[origin]
        if not isinstance(stmt, AssignStmt):
            continue
        value = stmt.value
        if isinstance(value, NewExpr):
            classes.add(value.class_name)
        elif isinstance(value, FieldRef) and field_types is not None:
            stored = field_types.get((value.sig.class_name, value.sig.name))
            if stored is not None:
                classes.add(stored)
        elif isinstance(value, InvokeExpr):
            if value.sig.return_type not in ("void", "java.lang.Object", "?"):
                classes.add(value.sig.return_type)
    return classes


def _param_at(method: IRMethod, name: str) -> Optional[Local]:
    for param in method.params:
        if param.name == name:
            return param
    if name == "this":
        return Local("this", method.class_name)
    return None


def collect_field_types(methods: list[IRMethod]) -> dict[tuple[str, str], str]:
    """Whole-app pre-pass mapping fields to the classes stored into them.

    Only direct ``field = new C()``-shaped stores are tracked; conflicting
    stores drop the entry (unknown).
    """
    field_types: dict[tuple[str, str], Optional[str]] = {}
    for method in methods:
        allocated: dict[str, str] = {}
        for stmt in method.statements:
            if not isinstance(stmt, AssignStmt):
                continue
            if isinstance(stmt.target, Local) and isinstance(stmt.value, NewExpr):
                allocated[stmt.target.name] = stmt.value.class_name
            elif isinstance(stmt.target, FieldRef) and isinstance(stmt.value, Local):
                key = (stmt.target.sig.class_name, stmt.target.sig.name)
                stored = allocated.get(stmt.value.name)
                if stored is None:
                    field_types[key] = None
                elif key not in field_types:
                    field_types[key] = stored
                elif field_types[key] != stored:
                    field_types[key] = None
    return {key: cls for key, cls in field_types.items() if cls is not None}
