"""Call-graph construction (CHA plus Android async pseudo-edges).

The original NChecker builds its call graph with Soot/FlowDroid, which
stitches Android's asynchronous constructs (AsyncTask, Runnable, Handler)
into ordinary edges.  This builder does the same over our IR:

* direct edges for static/special/virtual calls into application classes
  (virtual dispatch resolved up the superclass chain);
* ``task.execute()`` → the task class's ``doInBackground`` /
  ``onPostExecute`` / ... pseudo-edges (paper Fig 5);
* ``thread.start()`` / ``handler.post(r)`` / ``executor.execute(r)`` →
  the runnable's ``run``;
* network-library async target APIs → the registered listener object's
  callback methods (Volley listeners, loopj handlers, OkHttp callbacks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..app.apk import APK
from ..app.components import (
    ASYNC_TASK_CALLBACKS,
    ASYNC_TASK_CLASS,
    ASYNC_TASK_EXECUTE_METHODS,
    EXECUTOR_SUBMIT_METHODS,
    HANDLER_POST_METHODS,
    THREAD_CLASS,
    THREAD_START_METHODS,
)
from ..ir.method import IRMethod
from ..ir.values import InvokeExpr, KIND_STATIC, Local
from ..libmodels.annotations import LibraryRegistry
from .entrypoints import EntryPoint, MethodKey, discover_entry_points, method_key
from .resolve import MethodAnalysisCache, collect_field_types, origin_classes

#: Edge kinds, for diagnostics and ablation.
EDGE_DIRECT = "direct"
EDGE_ASYNC_TASK = "async_task"
EDGE_RUNNABLE = "runnable"
EDGE_LIB_CALLBACK = "lib_callback"

#: Names that hand a runnable/thread off to the framework — hoisted out of
#: the per-site edge derivation.
_RUNNABLE_DISPATCH_METHODS = frozenset(
    set(THREAD_START_METHODS)
    | set(HANDLER_POST_METHODS)
    | set(EXECUTOR_SUBMIT_METHODS)
)


@dataclass(frozen=True)
class CallEdge:
    caller: MethodKey
    stmt_index: int
    callee: MethodKey
    kind: str = EDGE_DIRECT


class CallGraph:
    """Application call graph with entry points."""

    def __init__(
        self,
        apk: APK,
        registry: Optional[LibraryRegistry] = None,
        cache: Optional[MethodAnalysisCache] = None,
    ) -> None:
        self.apk = apk
        self.registry = registry
        self.cache = cache or MethodAnalysisCache()
        self.methods: dict[MethodKey, IRMethod] = {}
        self.out_edges: dict[MethodKey, list[CallEdge]] = {}
        self.in_edges: dict[MethodKey, list[CallEdge]] = {}
        self.entry_points: list[EntryPoint] = discover_entry_points(apk)
        self.field_types = collect_field_types(list(apk.methods()))
        #: The registry's callback-interface set never changes for the life
        #: of the graph; computing it per call site was a build hotspot.
        self._callback_interfaces: frozenset[str] = frozenset(
            registry.callback_interfaces() if registry is not None else ()
        )
        #: Memoized ``origin_classes`` queries, keyed by (method, site,
        #: local).  Edge derivation asks for the same origins repeatedly
        #: (async-task, runnable, and library-callback probes per site);
        #: entries for a method are dropped when its edges are refreshed.
        self._origin_memo: dict[tuple[MethodKey, int, str], set[str]] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        for method in self.apk.methods():
            self.methods[method_key(method)] = method
        for key, method in self.methods.items():
            for idx, invoke in method.invoke_sites():
                for edge in self._edges_for_site(key, method, idx, invoke):
                    self._add_edge(edge)

    def _add_edge(self, edge: CallEdge) -> None:
        if edge.callee not in self.methods:
            return
        self.out_edges.setdefault(edge.caller, []).append(edge)
        self.in_edges.setdefault(edge.callee, []).append(edge)

    def _edges_for_site(
        self, caller: MethodKey, method: IRMethod, idx: int, invoke: InvokeExpr
    ) -> Iterator[CallEdge]:
        callee = self._resolve_direct(method, idx, invoke)
        if callee is not None:
            yield CallEdge(caller, idx, callee, EDGE_DIRECT)
        yield from self._async_task_edges(caller, method, idx, invoke)
        yield from self._runnable_edges(caller, method, idx, invoke)
        yield from self._library_callback_edges(caller, method, idx, invoke)

    def _resolve_direct(
        self, method: IRMethod, idx: int, invoke: InvokeExpr
    ) -> Optional[MethodKey]:
        hierarchy = self.apk.hierarchy
        cls_name = invoke.sig.class_name
        if cls_name == "?" and isinstance(invoke.base, Local):
            if invoke.base.name == "this":
                cls_name = method.class_name
            else:
                origins = self._origins_of(method, idx, invoke.base)
                app_origins = [o for o in origins if o in hierarchy]
                if len(app_origins) == 1:
                    cls_name = app_origins[0]
        if cls_name not in hierarchy:
            return None
        target = hierarchy.resolve_method(cls_name, invoke.sig.name, invoke.sig.arity)
        if target is None:
            return None
        return method_key(target)

    def _origins_of(
        self, method: IRMethod, idx: int, local: Local
    ) -> set[str]:
        memo_key = (method_key(method), idx, local.name)
        cached = self._origin_memo.get(memo_key)
        if cached is None:
            cached = origin_classes(method, idx, local, self.cache, self.field_types)
            self._origin_memo[memo_key] = cached
        return cached

    def _async_task_edges(
        self, caller: MethodKey, method: IRMethod, idx: int, invoke: InvokeExpr
    ) -> Iterator[CallEdge]:
        if invoke.sig.name not in ASYNC_TASK_EXECUTE_METHODS or invoke.base is None:
            return
        hierarchy = self.apk.hierarchy
        for origin in self._origins_of(method, idx, invoke.base):
            if origin not in hierarchy:
                continue
            if not hierarchy.is_subtype(origin, ASYNC_TASK_CLASS):
                continue
            cls = hierarchy.get(origin)
            if cls is None:
                continue
            cls_method_keys = cls.method_keys()
            for callback_name in ASYNC_TASK_CALLBACKS:
                for name, arity in cls_method_keys:
                    if name == callback_name:
                        yield CallEdge(
                            caller, idx, (origin, name, arity), EDGE_ASYNC_TASK
                        )

    def _runnable_edges(
        self, caller: MethodKey, method: IRMethod, idx: int, invoke: InvokeExpr
    ) -> Iterator[CallEdge]:
        if invoke.sig.name not in _RUNNABLE_DISPATCH_METHODS:
            return
        hierarchy = self.apk.hierarchy
        candidates: list[Local] = []
        if invoke.sig.name in THREAD_START_METHODS and invoke.base is not None:
            candidates.append(invoke.base)
        candidates.extend(a for a in invoke.args if isinstance(a, Local))
        for local in candidates:
            for origin in self._origins_of(method, idx, local):
                if origin not in hierarchy:
                    continue
                cls = hierarchy.get(origin)
                if cls is None:
                    continue
                runs_like_thread = hierarchy.is_subtype(origin, THREAD_CLASS)
                implements_runnable = "java.lang.Runnable" in hierarchy.supertypes(
                    origin
                ) or "java.lang.Runnable" in cls.interfaces
                if not (runs_like_thread or implements_runnable):
                    continue
                run = cls.get_method("run", 0)
                if run is not None:
                    yield CallEdge(caller, idx, (origin, "run", 0), EDGE_RUNNABLE)

    def _library_callback_edges(
        self, caller: MethodKey, method: IRMethod, idx: int, invoke: InvokeExpr
    ) -> Iterator[CallEdge]:
        if self.registry is None:
            return
        callback_interfaces = self._callback_interfaces
        if not callback_interfaces:
            return
        hierarchy = self.apk.hierarchy
        # Inspect every local argument; additionally, look one hop through
        # allocation sites into constructor arguments — Volley listeners
        # travel inside the Request object (`new StringRequest(m, url,
        # listener, errorListener)` then `queue.add(request)`).
        arg_locals = [a for a in invoke.args if isinstance(a, Local)]
        if not arg_locals:
            return
        arg_locals.extend(self._ctor_arg_locals(method, idx, arg_locals))
        for local in arg_locals:
            for origin in self._origins_of(method, idx, local):
                cls = hierarchy.get(origin)
                if cls is None:
                    continue
                supers = hierarchy.supertypes(origin) | set(cls.interfaces)
                matching = supers & callback_interfaces
                if not matching:
                    continue
                for iface in matching:
                    for name, arity in cls.method_keys():
                        spec = self.registry.find_callback_spec(iface, name)
                        if spec is not None:
                            yield CallEdge(
                                caller, idx, (origin, name, arity), EDGE_LIB_CALLBACK
                            )

    def _ctor_arg_locals(
        self, method: IRMethod, idx: int, arg_locals: list[Local]
    ) -> list[Local]:
        """Locals passed to the constructors of the objects in
        ``arg_locals`` (one indirection level)."""
        from ..dataflow.taint import trace_origins
        from ..ir.statements import AssignStmt
        from ..ir.values import NewExpr

        if not arg_locals or not any(
            isinstance(s, AssignStmt) and isinstance(s.value, NewExpr)
            for s in method.statements
        ):
            # No allocation sites means no constructor to look through —
            # skip the (comparatively expensive) origin traces entirely.
            return []
        cfg = self.cache.cfg(method)
        defuse = self.cache.defuse(method)
        found: list[Local] = []
        for local in arg_locals:
            for origin in trace_origins(cfg, idx, local.name, defuse):
                if origin < 0:
                    continue
                stmt = method.statements[origin]
                if not (
                    isinstance(stmt, AssignStmt) and isinstance(stmt.value, NewExpr)
                ):
                    continue
                for ctor_idx in range(origin + 1, len(method.statements)):
                    ctor = method.statements[ctor_idx].invoke()
                    if (
                        ctor is not None
                        and ctor.is_constructor
                        and ctor.base == stmt.target
                    ):
                        found.extend(
                            a for a in ctor.args if isinstance(a, Local)
                        )
                        break
        return found

    # -- incremental maintenance ---------------------------------------------

    def refresh_methods(self, keys: Iterable[MethodKey]) -> None:
        """Re-derive the out-edges of the given (mutated) methods.

        The per-method analysis cache entries for these methods must be
        dropped *before* calling this — edge resolution recovers receiver
        classes through it (:func:`origin_classes`).  Field-type facts are
        whole-app; if the mutation changed them, every method's edges may
        resolve differently and the graph is rebuilt wholesale.

        Keys not yet in the graph are *adopted* from the APK when it now
        declares them — the patcher's structural fixes (move-to-AsyncTask
        workers, injected lifecycle exit methods) add whole methods and
        classes between rounds.  Adoption re-discovers entry points, since
        an injected ``onPause``/``onDestroy`` is itself one.
        """
        keys = list(keys)
        adopted = False
        for key in keys:
            if key in self.methods:
                continue
            cls = self.apk.get_class(key[0])
            method = cls.get_method(key[1], key[2]) if cls is not None else None
            if method is not None:
                self.methods[key] = method
                adopted = True
        if adopted:
            self.entry_points = discover_entry_points(self.apk)
        keys = [k for k in keys if k in self.methods]
        dirty = set(keys)
        self._origin_memo = {
            mk: v for mk, v in self._origin_memo.items() if mk[0] not in dirty
        }
        new_field_types = collect_field_types(list(self.apk.methods()))
        if new_field_types != self.field_types:
            self.field_types = new_field_types
            self._origin_memo.clear()
            self.out_edges.clear()
            self.in_edges.clear()
            for key, method in self.methods.items():
                for idx, invoke in method.invoke_sites():
                    for edge in self._edges_for_site(key, method, idx, invoke):
                        self._add_edge(edge)
            return
        for key in keys:
            for edge in self.out_edges.pop(key, []):
                mirror = self.in_edges.get(edge.callee)
                if mirror is not None:
                    mirror[:] = [e for e in mirror if e.caller != key]
            method = self.methods[key]
            for idx, invoke in method.invoke_sites():
                for edge in self._edges_for_site(key, method, idx, invoke):
                    self._add_edge(edge)

    def transitive_callers(self, keys: Iterable[MethodKey]) -> set[MethodKey]:
        """All methods from which any of ``keys`` is reachable (callers,
        callers-of-callers, ...) — the dependency cone a summary
        invalidation must cover, excluding ``keys`` themselves."""
        seen: set[MethodKey] = set(keys)
        frontier = deque(seen)
        result: set[MethodKey] = set()
        while frontier:
            node = frontier.popleft()
            for edge in self.in_edges.get(node, ()):
                if edge.caller not in seen:
                    seen.add(edge.caller)
                    result.add(edge.caller)
                    frontier.append(edge.caller)
        return result

    # -- queries -------------------------------------------------------------

    def callees(self, key: MethodKey) -> list[CallEdge]:
        return self.out_edges.get(key, [])

    def callers(self, key: MethodKey) -> list[CallEdge]:
        return self.in_edges.get(key, [])

    def reachable_from(self, start: MethodKey) -> set[MethodKey]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for edge in self.out_edges.get(node, ()):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    frontier.append(edge.callee)
        return seen

    def reachable_from_entries(self) -> set[MethodKey]:
        seen: set[MethodKey] = set()
        for entry in self.entry_points:
            if entry.key in self.methods and entry.key not in seen:
                seen |= self.reachable_from(entry.key)
        return seen

    def __repr__(self) -> str:
        edges = sum(len(v) for v in self.out_edges.values())
        return (
            f"<CallGraph {len(self.methods)} methods, {edges} edges, "
            f"{len(self.entry_points)} entries>"
        )
