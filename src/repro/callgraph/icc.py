"""Inter-component communication (ICC) analysis — the paper's future work.

NChecker's §4.7 names its two FP sources: connectivity checks performed in
a *launcher* component before ``startActivity``, and failure notifications
delivered by broadcasting an error that *another* component displays.
The paper planned to integrate IccTA to close them; this module is a
lightweight equivalent:

* **Launch edges** — ``startActivity(intent)`` / ``startService(intent)``
  sites whose Intent's target component we can resolve (explicit Intents:
  the constructor's class-name argument).
* **Broadcast display** — ``sendBroadcast(intent)`` sites, plus the set of
  in-app components that receive broadcasts (an ``onReceive`` method) and
  surface a UI message.

The analyses consume this through
:class:`~repro.core.checker.NCheckerOptions` ``inter_component=True``;
the Table 9 ablation shows the 9 FPs vanish while the FN count is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..app.apk import APK
from ..ir.method import IRMethod
from ..ir.statements import AssignStmt
from ..ir.values import Const, InvokeExpr, Local, NewExpr
from ..libmodels.android import is_ui_notification
from .entrypoints import MethodKey, method_key
from .resolve import MethodAnalysisCache
from ..dataflow.taint import trace_origins

#: Methods that transfer control to another component.
LAUNCH_METHODS = frozenset({"startActivity", "startActivityForResult", "startService"})
BROADCAST_METHODS = frozenset({"sendBroadcast", "sendOrderedBroadcast", "sendStickyBroadcast"})
INTENT_CLASS = "android.content.Intent"


@dataclass(frozen=True)
class LaunchSite:
    """One resolved component launch."""

    caller: MethodKey
    stmt_index: int
    #: Target component class, or None when the Intent is implicit.
    target: Optional[str]


@dataclass(frozen=True)
class BroadcastSite:
    caller: MethodKey
    stmt_index: int


@dataclass
class ICCModel:
    """The app's inter-component flows."""

    launches: list[LaunchSite] = field(default_factory=list)
    broadcasts: list[BroadcastSite] = field(default_factory=list)
    #: Components that receive broadcasts and show a UI message.
    ui_broadcast_receivers: set[str] = field(default_factory=set)

    def launchers_of(self, component: str) -> list[LaunchSite]:
        """Launch sites that (may) start ``component``.

        Sites with an unresolved (implicit) Intent target are treated as
        potentially starting any component — the conservative direction
        for suppressing false positives."""
        return [
            site
            for site in self.launches
            if site.target == component or site.target is None
        ]

    @property
    def broadcasts_displayed(self) -> bool:
        """True when the app routes broadcast errors to a UI surface."""
        return bool(self.broadcasts) and bool(self.ui_broadcast_receivers)


def build_icc_model(apk: APK, cache: Optional[MethodAnalysisCache] = None) -> ICCModel:
    """Scan the app for ICC sites and broadcast-display components."""
    cache = cache or MethodAnalysisCache()
    model = ICCModel()
    for cls in apk.classes():
        for method in cls.methods():
            _scan_method(method, cache, model)
            if method.name == "onReceive" and _shows_ui(method):
                model.ui_broadcast_receivers.add(cls.name)
    return model


def _scan_method(method: IRMethod, cache: MethodAnalysisCache, model: ICCModel) -> None:
    for idx, invoke in method.invoke_sites():
        name = invoke.sig.name
        if name in LAUNCH_METHODS:
            target = _resolve_intent_target(method, idx, invoke, cache)
            model.launches.append(LaunchSite(method_key(method), idx, target))
        elif name in BROADCAST_METHODS:
            model.broadcasts.append(BroadcastSite(method_key(method), idx))


def _resolve_intent_target(
    method: IRMethod, idx: int, invoke: InvokeExpr, cache: MethodAnalysisCache
) -> Optional[str]:
    """Explicit-Intent resolution: find the Intent's allocation and read a
    class-name string from its constructor arguments."""
    intent_local = next((a for a in invoke.args if isinstance(a, Local)), None)
    if intent_local is None:
        return None
    cfg = cache.cfg(method)
    defuse = cache.defuse(method)
    for origin in trace_origins(cfg, idx, intent_local.name, defuse):
        if origin < 0:
            continue
        stmt = method.statements[origin]
        if not (isinstance(stmt, AssignStmt) and isinstance(stmt.value, NewExpr)):
            continue
        if stmt.value.class_name != INTENT_CLASS:
            continue
        for ctor_idx in range(origin + 1, len(method.statements)):
            ctor = method.statements[ctor_idx].invoke()
            if ctor is not None and ctor.is_constructor and ctor.base == stmt.target:
                for arg in ctor.args:
                    if isinstance(arg, Const) and isinstance(arg.value, str):
                        if "." in arg.value:  # looks like a class name
                            return arg.value
                break
    return None


def _shows_ui(method: IRMethod) -> bool:
    return any(is_ui_notification(invoke) for _i, invoke in method.invoke_sites())
