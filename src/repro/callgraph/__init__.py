"""Call-graph substrate: CHA + Android async pseudo-edges + entry points."""

from .icc import (
    BroadcastSite,
    ICCModel,
    LaunchSite,
    build_icc_model,
)
from .cha import (
    CallEdge,
    CallGraph,
    EDGE_ASYNC_TASK,
    EDGE_DIRECT,
    EDGE_LIB_CALLBACK,
    EDGE_RUNNABLE,
)
from .entrypoints import (
    EntryPoint,
    MethodKey,
    discover_entry_points,
    entry_points_by_key,
    method_key,
)
from .reachability import CallChain, chains_to_method, entries_reaching
from .resolve import MethodAnalysisCache, collect_field_types, origin_classes

__all__ = [
    "BroadcastSite",
    "CallChain",
    "CallEdge",
    "CallGraph",
    "EDGE_ASYNC_TASK",
    "EDGE_DIRECT",
    "EDGE_LIB_CALLBACK",
    "EDGE_RUNNABLE",
    "EntryPoint",
    "ICCModel",
    "LaunchSite",
    "build_icc_model",
    "MethodAnalysisCache",
    "MethodKey",
    "chains_to_method",
    "collect_field_types",
    "discover_entry_points",
    "entries_reaching",
    "entry_points_by_key",
    "method_key",
    "origin_classes",
]
