"""Reachability and call-chain extraction over the call graph.

NChecker's reports include the call stack from an entry point to the
buggy request (paper §4.6, Fig 7); the context inference (§4.4.2) needs
to know *which* entry points reach a request.  Both are path queries
answered here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cha import CallEdge, CallGraph
from .entrypoints import EntryPoint, MethodKey


@dataclass(frozen=True)
class CallChain:
    """A path of call edges from an entry point to a call site."""

    entry: EntryPoint
    edges: tuple[CallEdge, ...]

    @property
    def target_method(self) -> MethodKey:
        return self.edges[-1].callee if self.edges else self.entry.key

    def frames(self) -> list[tuple[MethodKey, int]]:
        """(method, call-site statement index) frames, outermost first."""
        return [(edge.caller, edge.stmt_index) for edge in self.edges]

    def __len__(self) -> int:
        return len(self.edges)


def chains_to_method(
    graph: CallGraph,
    target: MethodKey,
    max_chains: int = 32,
    max_depth: int = 24,
) -> list[CallChain]:
    """Call chains from each entry point to ``target`` (DFS, cycle-free).

    Chains are truncated at ``max_chains`` per app to bound path explosion
    (the corpus apps are small; real scans would cap similarly).
    """
    chains: list[CallChain] = []
    for entry in graph.entry_points:
        if entry.key not in graph.methods:
            continue
        if entry.key == target:
            chains.append(CallChain(entry, ()))
            continue
        stack: list[tuple[MethodKey, tuple[CallEdge, ...]]] = [(entry.key, ())]
        while stack and len(chains) < max_chains:
            node, path = stack.pop()
            if len(path) >= max_depth:
                continue
            for edge in graph.callees(node):
                if any(e.caller == edge.callee for e in path):
                    continue  # avoid cycles
                new_path = path + (edge,)
                if edge.callee == target:
                    chains.append(CallChain(entry, new_path))
                    if len(chains) >= max_chains:
                        break
                else:
                    stack.append((edge.callee, new_path))
    return chains


def entries_reaching(graph: CallGraph, target: MethodKey) -> list[EntryPoint]:
    """Entry points from which ``target`` is reachable."""
    reaching = []
    for entry in graph.entry_points:
        if entry.key not in graph.methods:
            continue
        if target in graph.reachable_from(entry.key):
            reaching.append(entry)
    return reaching
