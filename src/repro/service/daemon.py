"""The ``nchecker serve`` daemon: routing, admission, workers, cache.

:class:`ScanService` ties the service package together behind one
``async handle(Request) -> Response``:

* **Scans** — ``POST /v1/scans`` admits a submission (per-tenant token
  bucket → 429, bounded active-job queue → 503) and dispatches it to a
  persistent worker-process pool; ``GET /v1/scans/{id}`` polls status
  and results, with ``/findings`` (the exact ``scan --json`` document),
  ``/sarif``, and ``/trace`` views.
* **Cache blueprint** — ``/v1/cache/...`` serves the daemon's local
  cache directory over the blob API
  :class:`~repro.pipeline.cachestore.remote.RemoteBackend` speaks, so
  any host pointed at ``remote:http://this-daemon`` shares it.
* **Introspection** — ``/healthz`` (liveness + job counts) and
  ``/metrics`` (the daemon's own registry merged with every finished
  scan's snapshot — the PR 3 snapshot/merge protocol across the pool).

Every route, schema, and error code is documented in
``docs/SERVICE.md``.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS, NCheckerOptions
from ..obs import chrome_trace, empty_snapshot, get_logger, merge_snapshots
from ..pipeline.cachestore import LocalDirBackend, parse_size
from .http import (
    HttpServer,
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
)
from .jobs import JobStore
from .ratelimit import RateLimiter
from .worker import ServiceScanTask, execute_scan

log = get_logger("service")

#: One path segment of a cache entry key: no separators, no dot-files —
#: a remote client cannot traverse out of the cache root.
_KEY_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``nchecker serve`` configures."""

    host: str = "127.0.0.1"
    #: ``0`` binds an OS-assigned free port (tests); the CLI default is
    #: 8321.
    port: int = 8321
    #: Worker processes in the scan pool.
    workers: int = 2
    #: Bound on admitted-but-unfinished jobs; beyond it submissions get
    #: 503 until the backlog drains.
    queue_depth: int = 64
    #: Sustained submissions/second allowed per tenant (token-bucket
    #: refill rate); ``0`` disables rate limiting.
    rate_limit: float = 0.0
    #: Token-bucket capacity: how large a burst passes before the
    #: sustained rate applies.
    rate_burst: int = 8
    #: Server-side cache root: serves the ``/v1/cache`` blueprint and is
    #: the workers' ``local`` tier.  ``None`` disables both.
    cache_dir: Optional[str] = None
    #: Workers' ``--cache-backend`` spec; defaults to ``memory+local``
    #: when a cache root is set (warm blobs in-process, shared on disk).
    cache_backend: Optional[str] = None
    extended_checks: bool = False
    intra_jobs: int = 1
    eager_summaries: bool = False
    #: Reject request bodies beyond this size with 413.
    max_body_bytes: int = parse_size("16M")
    #: Test hook: builds the pool from the worker count.  ``None`` means
    #: a real ``ProcessPoolExecutor``, created lazily on first scan —
    #: cache-only deployments never fork.
    executor_factory: Optional[Callable[[int], object]] = None


class ScanService:
    """One daemon instance: HTTP server + job table + worker pool."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        from ..obs import MetricsRegistry

        self.registry = MetricsRegistry()
        self.jobs = JobStore()
        self.limiter = RateLimiter(config.rate_limit, config.rate_burst)
        self.server = HttpServer(
            self.handle, config.host, config.port, config.max_body_bytes
        )
        self.cache = (
            LocalDirBackend(config.cache_dir) if config.cache_dir else None
        )
        self._scan_metrics = empty_snapshot()
        self._executor = None
        self._stop = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.server.port}"

    def worker_options(self) -> NCheckerOptions:
        spec = self.config.cache_backend
        if spec is None and self.config.cache_dir:
            spec = "memory+local"
        enabled = DEFAULT_CHECKS
        if self.config.extended_checks:
            enabled = DEFAULT_CHECKS | EXTENDED_CHECKS
        return NCheckerOptions(
            cache_dir=self.config.cache_dir,
            cache_backend=spec,
            intra_jobs=self.config.intra_jobs,
            eager_summaries=self.config.eager_summaries,
            enabled_checks=enabled,
        )

    def _pool(self):
        if self._executor is None:
            if self.config.executor_factory is not None:
                self._executor = self.config.executor_factory(
                    self.config.workers
                )
            else:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.workers
                )
        return self._executor

    async def start(self) -> None:
        await self.server.start()
        log.info("serving on %s (%d workers)", self.url, self.config.workers)

    async def close(self) -> None:
        await self.server.close()
        if self._executor is not None:
            # wait=True: jobs still on the pool at shutdown are scans in
            # flight; letting them finish beats tearing down their pipes
            # under them (and keeps the interpreter's atexit hooks quiet).
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def request_stop(self) -> None:
        self._stop.set()

    async def run_until_stopped(self) -> None:
        await self._stop.wait()
        await self.close()

    # -- routing -------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        self.registry.inc("service.http.requests")
        seg = request.segments
        if seg == ("healthz",) and request.method == "GET":
            return self._healthz()
        if seg == ("metrics",) and request.method == "GET":
            return json_response(self.metrics_snapshot())
        if seg[:2] == ("v1", "scans"):
            return await self._route_scans(request, seg[2:])
        if seg[:2] == ("v1", "cache"):
            return self._route_cache(request, seg[2:])
        return error_response(404, f"no such resource: {request.path}")

    async def _route_scans(
        self, request: Request, rest: tuple[str, ...]
    ) -> Response:
        if rest == ():
            if request.method != "POST":
                return error_response(405, "use POST to submit a scan")
            return self._submit(request)
        job = self.jobs.get(rest[0])
        if job is None:
            return error_response(404, f"no such scan: {rest[0]}")
        if request.method != "GET":
            return error_response(405, "scan resources are read-only")
        if len(rest) == 1:
            return json_response(self._job_view(job))
        if len(rest) == 2 and rest[1] in ("findings", "sarif", "trace"):
            if not job.done:
                return error_response(
                    404, f"scan {job.id} is {job.status}; results not ready"
                )
            if job.status == "failed":
                return error_response(404, f"scan {job.id} failed: {job.error}")
            return self._result_view(job, rest[1])
        return error_response(404, f"no such resource: {request.path}")

    # -- scans ---------------------------------------------------------------

    def _submit(self, request: Request) -> Response:
        tenant = request.headers.get("x-nchecker-tenant", "default")
        if not self.limiter.allow(tenant):
            retry = max(1, round(self.limiter.retry_after(tenant)))
            self.registry.inc("service.scans.rejected.rate_limited")
            return error_response(
                429,
                f"tenant {tenant!r} is over its submission rate",
                **{"Retry-After": str(retry)},
            )
        if self.jobs.active_count() >= self.config.queue_depth:
            self.registry.inc("service.scans.rejected.queue_full")
            return error_response(
                503,
                f"request queue is full ({self.config.queue_depth} active "
                f"jobs); retry later",
                **{"Retry-After": "1"},
            )
        apkt_text, filename = self._parse_submission(request)
        job = self.jobs.create(tenant, filename)
        task = ServiceScanTask(apkt_text, filename, self.worker_options())
        self.registry.inc("service.scans.submitted")
        asyncio.get_running_loop().create_task(self._run_job(job, task))
        self._update_gauges()
        return json_response(
            {"id": job.id, "status": job.status, "url": f"/v1/scans/{job.id}"},
            status=202,
        )

    @staticmethod
    def _parse_submission(request: Request) -> tuple[str, str]:
        """The submitted app text and its client-side filename (the SARIF
        artifact URI): either a raw ``.apkt`` body or a JSON envelope
        ``{"apkt": ..., "filename": ...}``."""
        if not request.body:
            raise ProtocolError(400, "empty submission body")
        content_type = request.headers.get("content-type", "")
        if "json" in content_type or request.body.lstrip()[:1] == b"{":
            envelope = request.json()
            apkt_text = envelope.get("apkt")
            if not isinstance(apkt_text, str) or not apkt_text.strip():
                raise ProtocolError(400, "JSON submission needs an 'apkt' key")
            filename = envelope.get("filename", "submitted.apkt")
            if not isinstance(filename, str):
                raise ProtocolError(400, "'filename' must be a string")
            return apkt_text, filename
        try:
            return request.body.decode("utf-8"), "submitted.apkt"
        except UnicodeDecodeError:
            raise ProtocolError(400, "submission body is not UTF-8 text")

    async def _run_job(self, job, task: ServiceScanTask) -> None:
        job.status = "running"
        self._update_gauges()
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._pool(), execute_scan, task
            )
        except Exception as exc:
            job.status = "failed"
            job.error = f"worker crashed: {exc}"
            self.registry.inc("service.scans.failed")
        else:
            job.package = result.package
            job.n_findings = result.n_findings
            job.n_requests = result.n_requests
            job.json_dict = result.json_dict
            job.sarif_kind_values = result.sarif_kind_values
            job.sarif_results = result.sarif_results
            job.metrics_snapshot = result.metrics_snapshot
            job.trace_events = result.trace_events
            if result.metrics_snapshot:
                self._scan_metrics = merge_snapshots(
                    [self._scan_metrics, result.metrics_snapshot]
                )
            if result.ok:
                job.status = "done"
                self.registry.inc("service.scans.completed")
            else:
                job.status = "failed"
                job.error = result.error
                self.registry.inc("service.scans.failed")
        job.finished_at = time.time()
        self._update_gauges()

    def _job_view(self, job) -> dict:
        view = {
            "id": job.id,
            "status": job.status,
            "tenant": job.tenant,
            "filename": job.filename,
            "url": f"/v1/scans/{job.id}",
        }
        if job.status == "failed":
            view["error"] = job.error
        if job.status == "done":
            view.update(
                package=job.package,
                findings=job.n_findings,
                requests=job.n_requests,
                result=job.json_dict,
                counters=(job.metrics_snapshot or {}).get("counters", {}),
                links={
                    "findings": f"/v1/scans/{job.id}/findings",
                    "sarif": f"/v1/scans/{job.id}/sarif",
                    "trace": f"/v1/scans/{job.id}/trace",
                },
            )
        return view

    def _result_view(self, job, view: str) -> Response:
        if view == "findings":
            # Byte-identical to `nchecker scan --json` on the same app:
            # the same one-element document, dumps(indent=2), newline.
            return json_response([job.json_dict])
        if view == "sarif":
            from ..eval.sarif import assemble_sarif_log

            sarif_log = assemble_sarif_log(
                job.sarif_kind_values, job.sarif_results
            )
            # No trailing newline: `scan --sarif FILE` write_text()s the
            # dumps output, and these bytes must match that file.
            return Response(
                200, json.dumps(sarif_log, indent=2).encode("utf-8")
            )
        return json_response(chrome_trace(job.trace_events))

    # -- introspection -------------------------------------------------------

    def _healthz(self) -> Response:
        return json_response({
            "status": "ok",
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "jobs": self.jobs.counts(),
            "cache": self.cache is not None,
        })

    def metrics_snapshot(self) -> dict:
        """The daemon registry merged with every finished scan's
        snapshot — one coherent view across the worker pool."""
        return merge_snapshots([self._scan_metrics, self.registry.snapshot()])

    def _update_gauges(self) -> None:
        self.registry.set_gauge("service.jobs.active", self.jobs.active_count())

    # -- cache blueprint -----------------------------------------------------

    def _route_cache(
        self, request: Request, rest: tuple[str, ...]
    ) -> Response:
        if self.cache is None:
            return error_response(
                503, "this daemon serves no cache (started without a "
                "cache root; see --cache-dir)"
            )
        if rest == ("entries",) and request.method == "GET":
            return json_response({"entries": [
                {
                    "app_fp": info.key.app_fp,
                    "kind": info.key.kind,
                    "digest": info.key.digest,
                    "size": info.size,
                    "mtime": info.mtime,
                }
                for info in self.cache.list_entries()
            ]})
        if rest == ("gc",) and request.method == "POST":
            body = request.json() if request.body else {}
            try:
                max_bytes = int(body.get("max_bytes", 0))
                grace = float(body.get("grace_seconds", 60.0))
            except (TypeError, ValueError):
                raise ProtocolError(400, "gc needs numeric max_bytes/"
                                    "grace_seconds")
            removed, freed = self.cache.gc(max_bytes, grace_seconds=grace)
            self.registry.inc("service.cache.gc_removed", removed)
            return json_response({"removed": removed, "freed": freed})
        if rest == ("clear",) and request.method == "POST":
            removed = self.cache.clear()
            return json_response({"removed": removed})
        if len(rest) == 3:
            return self._cache_entry(request, rest)
        return error_response(404, f"no such resource: {request.path}")

    def _cache_entry(
        self, request: Request, rest: tuple[str, ...]
    ) -> Response:
        from ..pipeline.cachestore import EntryKey

        if not all(_KEY_SEGMENT.match(part) for part in rest):
            return error_response(400, "malformed cache entry key")
        key = EntryKey(*rest)
        if request.method == "GET":
            self.registry.inc("service.cache.gets")
            found = self.cache.get(key)
            if found is None:
                self.registry.inc("service.cache.get_misses")
                return error_response(404, "no such cache entry")
            return Response(200, found.blob, "application/octet-stream")
        if request.method == "PUT":
            if not request.body:
                return error_response(400, "empty cache entry body")
            written = self.cache.put(key, request.body)
            if not written:
                return error_response(503, "cache write failed")
            self.registry.inc("service.cache.puts")
            return json_response({"stored": True}, status=201)
        if request.method == "DELETE":
            removed = self.cache.delete(key)
            self.registry.inc("service.cache.deletes")
            return json_response({"removed": removed})
        return error_response(405, "cache entries support GET/PUT/DELETE")


# ---------------------------------------------------------------------------
# Entry points: the CLI's foreground loop and the tests' background thread.
# ---------------------------------------------------------------------------


async def serve(config: ServiceConfig) -> None:
    """Run one daemon in the current event loop until cancelled (the
    ``nchecker serve`` foreground path)."""
    service = ScanService(config)
    await service.start()
    try:
        await service.run_until_stopped()
    finally:
        await service.close()


class ServiceHandle:
    """A daemon running on a background thread (tests, benchmarks)."""

    def __init__(self, thread, loop, service) -> None:
        self._thread = thread
        self._loop = loop
        self.service = service

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.service.port}"

    def stop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout=timeout)


def start_in_thread(config: ServiceConfig) -> ServiceHandle:
    """Boot a daemon on a fresh thread + event loop; returns once the
    socket is bound (``handle.base_url`` is ready to hit)."""
    started = threading.Event()
    holder: dict = {}

    async def main() -> None:
        service = ScanService(config)
        await service.start()
        holder["service"] = service
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await service.run_until_stopped()

    def runner() -> None:
        try:
            asyncio.run(main())
        except Exception:  # pragma: no cover - surfaced via started timeout
            log.exception("service thread died")
            started.set()

    thread = threading.Thread(
        target=runner, name="nchecker-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30) or "service" not in holder:
        raise RuntimeError("service failed to start; see log")
    return ServiceHandle(thread, holder["loop"], holder["service"])
