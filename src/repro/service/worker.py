"""The scan execution function the daemon dispatches to its pool.

Mirrors the contract of :mod:`repro.pipeline.batch`: a picklable task
goes over the pipe, a fully *rendered* result comes back (the JSON
dict, SARIF pieces, metrics snapshot, and span events) so the daemon
process never re-derives analysis output — the findings document a
client fetches is byte-identical to ``nchecker scan --json`` on the
same APK, by construction.

Workers are long-lived on purpose.  :func:`execute_scan` keeps one
:class:`~repro.core.checker.NChecker` per options profile in module
state, so a worker process carries its ``SessionCache`` (and, with a
``memory`` cache tier in the options, its in-process blob tier) across
requests — a resubmitted unchanged app reuses the whole artifact store
without touching disk.  Telemetry isolation still holds: every task
installs a fresh tracer/registry pair for its duration and ships the
snapshot back for the daemon to merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..core.checker import NCheckerOptions
from ..obs import (
    MetricsRegistry,
    Tracer,
    profile_from_events,
    set_metrics,
    set_tracer,
    span,
)


@dataclass(frozen=True)
class ServiceScanTask:
    """Picklable work order for one submitted app."""

    apkt_text: str
    filename: str
    options: NCheckerOptions


@dataclass
class ServiceScanResult:
    """Rendered scan output for one submission (or the error)."""

    ok: bool
    error: str = ""
    package: str = ""
    n_findings: int = 0
    n_requests: int = 0
    json_dict: Optional[dict] = None
    sarif_kind_values: list = field(default_factory=list)
    sarif_results: list = field(default_factory=list)
    metrics_snapshot: Optional[dict] = None
    trace_events: list = field(default_factory=list)


#: One warm checker per options profile, living as long as the worker
#: process — the daemon's "persistent pool" promise.  Keyed by the
#: frozen options dataclass itself.
_CHECKERS: dict = {}


def _checker_for(options: NCheckerOptions):
    from ..core.checker import NChecker

    checker = _CHECKERS.get(options)
    if checker is None:
        checker = _CHECKERS[options] = NChecker(options=options)
    return checker


def execute_scan(task: ServiceScanTask) -> ServiceScanResult:
    """Scan one submitted app text and render every output mode.

    Module-level so a ``ProcessPoolExecutor`` can dispatch it; also
    callable in-process (tests inject stub executors that do exactly
    that)."""
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    old_tracer = set_tracer(tracer)
    old_metrics = set_metrics(registry)
    try:
        result = _scan(task)
    finally:
        set_tracer(old_tracer)
        set_metrics(old_metrics)
    snapshot = registry.snapshot()
    snapshot["profile"] = profile_from_events(tracer.export())
    result.metrics_snapshot = snapshot
    result.trace_events = tracer.export()
    return result


def _scan(task: ServiceScanTask) -> ServiceScanResult:
    from ..app.loader import loads_apk
    from ..eval.sarif import finding_result
    from ..ir.parser import ParseError

    try:
        with span("load", path=task.filename):
            apk = loads_apk(task.apkt_text)
    except (ParseError, ValueError) as exc:
        return ServiceScanResult(
            ok=False, error=f"{task.filename}: {exc}"
        )
    result = _checker_for(task.options).scan(apk)
    uri = Path(task.filename).as_posix()
    return ServiceScanResult(
        ok=True,
        package=apk.package,
        n_findings=len(result.findings),
        n_requests=len(result.requests),
        json_dict=result.to_dict(),
        sarif_kind_values=[f.kind.value for f in result.findings],
        sarif_results=[finding_result(f, uri) for f in result.findings],
    )
