"""Per-tenant token-bucket rate limiting for ``POST /v1/scans``.

The classic shape: a bucket holds up to ``burst`` tokens, refills at
``rate`` tokens per second, and a submission spends one.  Bursts up to
the bucket size pass immediately; sustained traffic is capped at the
refill rate; an empty bucket means 429 with a ``Retry-After`` hint.

Tenancy is by the ``X-NChecker-Tenant`` request header (clients that
send none share the ``"default"`` bucket), so one noisy client cannot
starve the fleet.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable


class TokenBucket:
    """One tenant's budget: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self.clock()
        self.tokens = min(
            float(self.burst), self.tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def allow(self) -> bool:
        """Spend one token if available."""
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one token will be available (0 when one is)."""
        self._refill()
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Token buckets keyed by tenant; ``rate <= 0`` disables limiting."""

    def __init__(
        self,
        rate: float,
        burst: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def bucket(self, tenant: str) -> TokenBucket:
        found = self._buckets.get(tenant)
        if found is None:
            found = self._buckets[tenant] = TokenBucket(
                self.rate, self.burst, self.clock
            )
        return found

    def allow(self, tenant: str) -> bool:
        if not self.enabled:
            return True
        return self.bucket(tenant).allow()

    def retry_after(self, tenant: str) -> float:
        if not self.enabled:
            return 0.0
        return self.bucket(tenant).retry_after()
