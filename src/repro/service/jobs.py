"""The in-memory job table behind ``/v1/scans``.

One :class:`Job` per submission, moving ``queued → running`` and then
to ``done`` or ``failed``; the table is only ever touched from the
daemon's event loop, so there is no locking.  Finished jobs are kept
for polling and LRU-evicted beyond a retention bound — the daemon is a
scanner, not a database; durable results belong to the client that
fetched them.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Optional

#: States a job moves through.  ``queued`` means admitted but not yet
#: handed to the pool; ``running`` covers pool-queue wait plus the scan
#: itself (the daemon cannot see inside the executor).
JOB_STATES = ("queued", "running", "done", "failed")

ACTIVE_STATES = frozenset({"queued", "running"})


@dataclass
class Job:
    """One scan submission and, once finished, its rendered results."""

    id: str
    tenant: str
    filename: str
    status: str = "queued"
    error: str = ""
    package: str = ""
    n_findings: int = 0
    n_requests: int = 0
    #: ``ScanResult.to_dict()`` — the same dict ``scan --json`` prints.
    json_dict: Optional[dict] = None
    #: Finding kind values + SARIF result objects, assembled on demand.
    sarif_kind_values: list = field(default_factory=list)
    sarif_results: list = field(default_factory=list)
    #: This scan's metrics snapshot (counters/gauges/histograms/profile).
    metrics_snapshot: Optional[dict] = None
    #: This scan's span events (``/v1/scans/{id}/trace``).
    trace_events: list = field(default_factory=list)
    created_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed")


class JobStore:
    """Insertion-ordered job table with bounded retention."""

    def __init__(self, retain_finished: int = 256) -> None:
        self.retain_finished = retain_finished
        self._jobs: dict[str, Job] = {}
        self._serial = itertools.count(1)
        self._nonce = os.urandom(4).hex()

    def create(self, tenant: str, filename: str) -> Job:
        job_id = f"scan-{next(self._serial):06d}-{self._nonce}"
        job = Job(id=job_id, tenant=tenant, filename=filename)
        self._jobs[job_id] = job
        self._evict_finished()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def active_count(self) -> int:
        """Jobs admitted but not finished — what the queue bound caps."""
        return sum(
            1 for job in self._jobs.values() if job.status in ACTIVE_STATES
        )

    def counts(self) -> dict[str, int]:
        out = dict.fromkeys(JOB_STATES, 0)
        for job in self._jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out

    def _evict_finished(self) -> None:
        finished = [j for j in self._jobs.values() if j.done]
        for job in finished[: max(0, len(finished) - self.retain_finished)]:
            del self._jobs[job.id]
