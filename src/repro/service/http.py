"""A minimal asyncio HTTP/1.1 server core.

The repo carries no third-party dependencies, so the daemon speaks
HTTP/1.1 directly over :func:`asyncio.start_server`: request line,
headers, a ``Content-Length`` body, one response, close.  That subset
is everything a JSON API needs — no chunked uploads, no keep-alive, no
TLS (run the daemon behind a reverse proxy for those) — and keeping it
~200 lines means the transport can be tested exhaustively.

The handler contract is a single ``async handler(Request) -> Response``
callable; routing lives with the application
(:class:`~repro.service.daemon.ScanService`), not here.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from ..obs import get_logger

log = get_logger("service.http")

#: Bound on the request line + headers block, generous for any client.
MAX_HEADER_BYTES = 32 << 10

REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or over-limit request; carries the status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    #: Header names are lower-cased; last occurrence wins.
    headers: dict[str, str]
    body: bytes

    @property
    def segments(self) -> tuple[str, ...]:
        """The path split on ``/``, empty segments dropped —
        ``/v1/scans/abc`` → ``('v1', 'scans', 'abc')``."""
        return tuple(part for part in self.path.split("/") if part)

    def json(self) -> dict:
        """The body decoded as a JSON object; :class:`ProtocolError`
        (400) when it is not one."""
        try:
            decoded = json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}")
        if not isinstance(decoded, dict):
            raise ProtocolError(400, "JSON body must be an object")
        return decoded


@dataclass
class Response:
    """One HTTP response; the server adds Content-Length and closes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(payload, status: int = 200, **headers: str) -> Response:
    """A JSON response; the document ends in a newline so curl output
    composes (and ``GET /v1/scans/{id}/findings`` matches the CLI's
    ``print`` byte for byte)."""
    body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
    return Response(status, body, "application/json", dict(headers))


def error_response(status: int, message: str, **headers: str) -> Response:
    return json_response({"error": message}, status, **headers)


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF before
    any bytes, :class:`ProtocolError` on garbage or over-limit input."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection opened and closed without a request
        raise ProtocolError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request head too large")

    request_line, _, header_block = head.partition(b"\r\n")
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {parts[:3]}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in header_block.decode("latin-1").split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(400, "malformed Content-Length")
    if length < 0:
        raise ProtocolError(400, "malformed Content-Length")
    if length > max_body_bytes:
        raise ProtocolError(413, f"body exceeds {max_body_bytes} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "truncated request body")

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    reason = REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "close",
        **response.headers,
    }
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n")
    writer.write(response.body)
    await writer.drain()


Handler = Callable[[Request], Awaitable[Response]]


class HttpServer:
    """One listening socket dispatching requests to a single handler."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 16 << 20,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.Server] = None

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` is the bound port
        afterwards (``port=0`` asks the OS for a free one)."""
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader, self.max_body_bytes)
            except ProtocolError as exc:
                await write_response(
                    writer, error_response(exc.status, str(exc))
                )
                return
            if request is None:
                return
            try:
                response = await self.handler(request)
            except ProtocolError as exc:
                response = error_response(exc.status, str(exc))
            except Exception:
                log.exception(
                    "handler crashed on %s %s", request.method, request.path
                )
                response = error_response(500, "internal server error")
            await write_response(writer, response)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client went away; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
