"""Scan-as-a-service: the ``nchecker serve`` daemon.

A long-lived asyncio HTTP/JSON daemon that accepts APK submissions,
runs them on a persistent worker-process pool (each worker keeps its
``NChecker`` session cache warm across requests), and serves results as
findings JSON or SARIF — plus the server half of the ``remote:URL``
cache tier, so one fleet's scans warm every host's cache.  The module
split mirrors the concerns:

* :mod:`~repro.service.http` — a dependency-free asyncio HTTP/1.1
  server core (request parsing, response writing, JSON helpers);
* :mod:`~repro.service.jobs` — the in-memory job table
  (``queued → running → done|failed``) behind ``/v1/scans``;
* :mod:`~repro.service.ratelimit` — per-tenant token buckets;
* :mod:`~repro.service.worker` — the picklable scan execution function
  dispatched to the pool (rendered results + telemetry snapshot back);
* :mod:`~repro.service.daemon` — :class:`ScanService`: routing,
  admission control (queue bound, rate limits), the worker pool, the
  ``/v1/cache`` blueprint, and ``/healthz`` + ``/metrics``.

The HTTP API, deployment notes, and a curl quickstart live in
``docs/SERVICE.md``.
"""

from .daemon import ScanService, ServiceConfig, serve, start_in_thread
from .http import Request, Response, json_response
from .jobs import Job, JobStore
from .ratelimit import RateLimiter, TokenBucket
from .worker import ServiceScanTask, execute_scan

__all__ = [
    "Job",
    "JobStore",
    "RateLimiter",
    "Request",
    "Response",
    "ScanService",
    "ServiceConfig",
    "ServiceScanTask",
    "TokenBucket",
    "execute_scan",
    "json_response",
    "serve",
    "start_in_thread",
]
