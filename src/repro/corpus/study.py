"""The empirical study dataset (paper §2): 21 apps, 90 NPDs.

Encodes Table 1 (the studied apps), Table 2 (representative NPDs),
Table 3 (root-cause distribution), Figure 4 (UX-impact distribution),
and the §2.3 sub-cause breakdowns, as queryable data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.defects import Impact, RootCause


@dataclass(frozen=True)
class StudiedApp:
    """One row of Table 1."""

    name: str
    category: str
    installs: str  # Play-Store install bracket, e.g. ">500M"


#: Table 1 — the 21 Android apps/projects of the study.
STUDIED_APPS: tuple[StudiedApp, ...] = (
    StudiedApp("Chrome", "Communication", ">500M"),
    StudiedApp("Barcode scanner", "Tools", ">100M"),
    StudiedApp("Firefox", "Communication", ">50M"),
    StudiedApp("Telegram", "Communication", ">10M"),
    StudiedApp("K9", "Communication", ">5M"),
    StudiedApp("XBMC", "Media & Video", ">1M"),
    StudiedApp("Wordpress", "Social", ">1M"),
    StudiedApp("Sipdroid", "Communication", ">1M"),
    StudiedApp("ConnectBot", "Communication", ">1M"),
    StudiedApp("NPR news", "News & Magazines", ">1M"),
    StudiedApp("Csipsimple", "Communication", ">1M"),
    StudiedApp("Signal private messenger", "Communication", ">1M"),
    StudiedApp("ChatSecure", "Communication", ">100K"),
    StudiedApp("Owncloud", "Productivity", ">100K"),
    StudiedApp("GTalkSMS", "Tools", ">50K"),
    StudiedApp("Yaxim", "Communication", ">50K"),
    StudiedApp("Jamendo Player", "Music & Audio", ">10K"),
    StudiedApp("Hacker News", "News & Magazines", ">10K"),
    StudiedApp("BombusMod", "Social", ">10K"),
    StudiedApp("Kontalk", "Communication", ">10K"),
    StudiedApp("Android Framework", "System", "built-in"),
)


@dataclass(frozen=True)
class RepresentativeNPD:
    """One row of Table 2."""

    case_id: str
    category: str
    app: str
    description: str
    resolution: str
    impact: Impact


#: Table 2 — representative NPDs.
REPRESENTATIVE_NPDS: tuple[RepresentativeNPD, ...] = (
    RepresentativeNPD(
        "i", "Dysfunction", "Firefox",
        "The download fails due to transient network errors",
        "Add retry on connection failures", Impact.DYSFUNCTION,
    ),
    RepresentativeNPD(
        "ii", "Dysfunction", "Yaxim",
        "The sent message is lost on network failure",
        "Queue the message for re-sending", Impact.DYSFUNCTION,
    ),
    RepresentativeNPD(
        "iii", "Unfriendly UI", "Hacker News",
        "No indication if the feeds loading fails",
        "Add error message", Impact.UNFRIENDLY_UI,
    ),
    RepresentativeNPD(
        "iv", "Crash", "ChatSecure",
        "Do not handle no connection exception on login",
        "Add catch blocks", Impact.CRASH_FREEZE,
    ),
    RepresentativeNPD(
        "v", "Freeze", "Chrome",
        "Failed XMLHttpRequest on webpage freezes the WebView",
        "Cancel the request on failure", Impact.CRASH_FREEZE,
    ),
    RepresentativeNPD(
        "vi", "Battery drain", "Kontalk",
        "Frequent synchronizations in offline mode",
        "Disable synchronization in offline", Impact.BATTERY_DRAIN,
    ),
)

#: Total NPDs studied (§2.1).
TOTAL_STUDIED_NPDS = 90

#: Fig 4 — impact distribution in NPD counts (percentages in the paper:
#: 36/33/21/10 of 90).
IMPACT_CASES: dict[Impact, int] = {
    Impact.DYSFUNCTION: 32,  # 36 %
    Impact.UNFRIENDLY_UI: 30,  # 33 %
    Impact.CRASH_FREEZE: 19,  # 21 %
    Impact.BATTERY_DRAIN: 9,  # 10 %
}

#: Table 3 — root-cause case counts.
ROOT_CAUSE_CASES: dict[RootCause, int] = {
    RootCause.NO_CONNECTIVITY_CHECK: 27,  # 30 %
    RootCause.MISHANDLED_TRANSIENT: 12,  # 13 %
    RootCause.MISHANDLED_PERMANENT: 24,  # 27 %
    RootCause.MISHANDLED_SWITCH: 27,  # 30 %
}

#: §2.3 sub-cause splits (percent *within* their cause).
TRANSIENT_SUBCAUSES = {
    "No retry for time-sensitive requests": 55,
    "Over-retry": 45,
}
PERMANENT_SUBCAUSES = {
    "No timeout setting": 33,
    "Absent/Misleading failure notification": 44,
    "No validity check on network response": 23,
}
SWITCH_SUBCAUSES = {
    "No reconnection on network switch": 67,
    "No automatic failure recovery": 34,
}


def impact_distribution_percent() -> dict[Impact, int]:
    """Fig 4 percentages, recomputed from case counts."""
    return {
        impact: round(100 * count / TOTAL_STUDIED_NPDS)
        for impact, count in IMPACT_CASES.items()
    }


def root_cause_distribution_percent() -> dict[RootCause, int]:
    """Table 3 percentages, recomputed from case counts."""
    return {
        cause: round(100 * count / TOTAL_STUDIED_NPDS)
        for cause, count in ROOT_CAUSE_CASES.items()
    }
