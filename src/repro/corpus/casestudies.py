"""Table 2, executable: the paper's six representative NPDs as runnable
buggy/fixed app pairs.

Each case study builds the defective app the paper describes, names the
network condition that triggers it, exposes a ``symptom`` predicate over
the runtime's :class:`~repro.netsim.runtime.RunReport`, and builds the
fixed variant implementing the "Developer's resolution" column.  The
tests (and `repro.eval`) verify the full arc for every row: NChecker
flags the buggy app, the symptom manifests at runtime, and the paper's
fix removes both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..app.apk import APK
from ..core.defects import DefectKind, Impact
from ..ir.values import Local
from ..libmodels import extended_registry
from ..netsim.link import LinkProfile, LinkSchedule, OFFLINE, THREE_G, WIFI
from ..netsim.runtime import RunReport, Runtime
from .appbuilder import AppBuilder

#: Transient-error condition: individual attempts often fail, retries
#: usually recover (the Firefox download situation).
TRANSIENT_3G = LinkProfile("transient-3G", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.22)
#: The WiFi→3G handover that stales long-lived connections.
HANDOVER = LinkSchedule(((0.0, WIFI), (5_000.0, THREE_G)))
#: Available but very poor (Fig 1's caption).
VERY_POOR = LinkProfile("very-poor", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.995)


@dataclass
class CaseStudy:
    """One executable row of Table 2."""

    case_id: str
    app_name: str
    description: str
    resolution: str
    impact: Impact
    detected_as: DefectKind
    entry: tuple[str, str]
    network: object  # LinkProfile or LinkSchedule
    build_buggy: Callable[[], APK]
    build_fixed: Callable[[], APK]
    #: Does this run exhibit the case's symptom?
    symptom: Callable[[RunReport], bool]
    seed: int = 7
    uses_xmpp: bool = False

    def run(self, apk: APK) -> RunReport:
        registry = extended_registry() if self.uses_xmpp else None
        runtime = Runtime(apk, self.network, registry=registry, seed=self.seed)
        return runtime.run_entry(*self.entry)


# ---------------------------------------------------------------------------
# (i) Firefox — "The download fails due to transient network errors"
# ---------------------------------------------------------------------------


def _firefox(with_retry: bool) -> APK:
    app = AppBuilder("case.firefox")
    activity = app.activity("DownloadActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    client = body.new("com.turbomanage.httpclient.BasicHttpClient", "client")
    body.call(client, "setReadWriteTimeout", 3000)
    if with_retry:
        body.call(client, "setMaxRetries", 5)
    else:
        body.call(client, "setMaxRetries", 0)
    region = body.begin_try()
    response = body.call(
        client, "get", "http://dl.example.com/file", ret="resp",
        return_type="com.turbomanage.httpclient.HttpResponse",
    )
    with body.if_then("!=", response, None):
        body.call(response, "getBodyAsString", ret="data",
                  cls="com.turbomanage.httpclient.HttpResponse")
    body.begin_catch(region, "java.io.IOException")
    toast = body.static_call("android.widget.Toast", "makeText", "ctx",
                             "Download failed", 0, ret="t",
                             return_type="android.widget.Toast")
    body.call(toast, "show", cls="android.widget.Toast")
    body.end_try(region)
    body.ret()
    activity.add(body)
    return app.build()


FIREFOX_DOWNLOAD = CaseStudy(
    "i",
    "Firefox",
    "The download fails due to transient network errors",
    "Add retry on connection failures",
    Impact.DYSFUNCTION,
    DefectKind.NO_RETRY_TIME_SENSITIVE,
    ("case.firefox.DownloadActivity", "onClick"),
    TRANSIENT_3G,
    lambda: _firefox(with_retry=False),
    lambda: _firefox(with_retry=True),
    symptom=lambda r: r.requests_succeeded == 0,  # the download never lands
    seed=2,
)


# ---------------------------------------------------------------------------
# (ii) Yaxim — "The sent message is lost on network failure"
# ---------------------------------------------------------------------------


def _yaxim(with_requeue: bool) -> APK:
    app = AppBuilder("case.yaxim")
    activity = app.activity("ChatActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    conn = body.new("org.jivesoftware.smack.XMPPConnection", "conn")
    if with_requeue:
        body.call(conn, "setReconnectionAllowed", True)
    body.call(conn, "connect")
    body.static_call("java.lang.Thread", "sleep", 10_000, ret=None)  # handover
    region = body.begin_try()
    body.call(conn, "sendPacket", "hello")
    body.begin_catch(region, "java.io.IOException")
    # The buggy version drops the message here; the resolution queues it
    # for re-sending (modelled as an immediate resend after reconnect).
    if with_requeue:
        body.call(conn, "connect")
        body.call(conn, "sendPacket", "hello")
    body.end_try(region)
    body.ret()
    activity.add(body)
    return app.build()


YAXIM_LOST_MESSAGE = CaseStudy(
    "ii",
    "Yaxim",
    "The sent message is lost on network failure",
    "Queue the message for re-sending",
    Impact.DYSFUNCTION,
    DefectKind.NO_RECONNECT_ON_SWITCH,
    ("case.yaxim.ChatActivity", "onClick"),
    HANDOVER,
    lambda: _yaxim(with_requeue=False),
    lambda: _yaxim(with_requeue=True),
    # Lost message: connect succeeded but the send never did.
    symptom=lambda r: r.requests_succeeded <= 1,
    uses_xmpp=True,
)


# ---------------------------------------------------------------------------
# (iii) Hacker News — "No indication if the feeds loading fails"
# ---------------------------------------------------------------------------


def _hackernews(with_message: bool) -> APK:
    from .snippets import Notification, RequestSpec, inject_request

    app = AppBuilder("case.hackernews")
    activity = app.activity("FeedActivity")
    body = activity.method("onRefresh")
    spec = RequestSpec(
        library="volley",
        with_notification=Notification.TOAST if with_message else Notification.NONE,
        uses_error_types=True,
    )
    inject_request(app, body, spec, user_initiated=True)
    body.ret()
    activity.add(body)
    return app.build()


HACKERNEWS_SILENT_FEED = CaseStudy(
    "iii",
    "Hacker News",
    "No indication if the feeds loading fails",
    "Add error message",
    Impact.UNFRIENDLY_UI,
    DefectKind.MISSED_NOTIFICATION,
    ("case.hackernews.FeedActivity", "onRefresh"),
    OFFLINE,
    lambda: _hackernews(with_message=False),
    lambda: _hackernews(with_message=True),
    symptom=lambda r: r.silent_failure,
)


# ---------------------------------------------------------------------------
# (iv) ChatSecure — "Do not handle no connection exception on login"
# ---------------------------------------------------------------------------


def _chatsecure(with_catch: bool) -> APK:
    app = AppBuilder("case.chatsecure")
    activity = app.activity("LoginActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    conn = body.new("org.jivesoftware.smack.XMPPConnection", "conn")
    if with_catch:
        region = body.begin_try()
        body.call(conn, "connect")
        ok = body.call(conn, "isConnected", ret="ok", return_type="boolean")
        with body.if_then("==", Local("ok"), True):
            body.call(conn, "login")
        body.begin_catch(region, "java.io.IOException")
        toast = body.static_call("android.widget.Toast", "makeText", "ctx",
                                 "Could not sign in - check your connection", 0,
                                 ret="t", return_type="android.widget.Toast")
        body.call(toast, "show", cls="android.widget.Toast")
        body.end_try(region)
    else:
        # The pre-patch shape of Fig 1: no guard, no catch.
        body.call(conn, "connect")
        body.call(conn, "login")
    body.ret()
    activity.add(body)
    return app.build()


CHATSECURE_LOGIN_CRASH = CaseStudy(
    "iv",
    "ChatSecure",
    "Do not handle no connection exception on login",
    "Add catch blocks",
    Impact.CRASH_FREEZE,
    DefectKind.MISSED_NOTIFICATION,  # plus the crash the runtime shows
    ("case.chatsecure.LoginActivity", "onClick"),
    VERY_POOR,
    lambda: _chatsecure(with_catch=False),
    lambda: _chatsecure(with_catch=True),
    symptom=lambda r: r.crashed,
    seed=11,
    uses_xmpp=True,
)


# ---------------------------------------------------------------------------
# (v) Chrome — "Failed XMLHttpRequest on webpage freezes the WebView"
# ---------------------------------------------------------------------------


def _chrome(with_timeout: bool) -> APK:
    app = AppBuilder("case.chrome")
    activity = app.activity("WebViewActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    client = body.new("com.squareup.okhttp.OkHttpClient", "client")
    if with_timeout:
        body.call(client, "setReadTimeout", 5000)
    call = body.call(client, "newCall", "http://xhr.example.com", ret="call",
                     return_type="com.squareup.okhttp.Call")
    region = body.begin_try()
    body.call(call, "execute", ret="resp", cls="com.squareup.okhttp.Call")
    body.begin_catch(region, "java.io.IOException")
    body.nop()  # "cancel the request on failure"
    body.end_try(region)
    body.ret()
    activity.add(body)
    return app.build()


CHROME_FROZEN_WEBVIEW = CaseStudy(
    "v",
    "Chrome",
    "Failed XMLHttpRequest on webpage freezes the WebView",
    "Cancel the request on failure",
    Impact.CRASH_FREEZE,
    DefectKind.MISSED_TIMEOUT,
    ("case.chrome.WebViewActivity", "onClick"),
    OFFLINE,
    lambda: _chrome(with_timeout=False),
    lambda: _chrome(with_timeout=True),
    symptom=lambda r: r.sim_time_ms > 60_000,  # the page hangs for minutes
)


# ---------------------------------------------------------------------------
# (vi) Kontalk — "Frequent synchronizations in offline mode"
# ---------------------------------------------------------------------------


def _kontalk(with_guard: bool) -> APK:
    app = AppBuilder("case.kontalk")
    service = app.service("SyncService")
    body = service.method(
        "onStartCommand",
        params=[("android.content.Intent", "intent"), ("int", "flags")],
        return_type="int",
    )
    if with_guard:
        cm = body.new("android.net.ConnectivityManager", "cm")
        ni = body.call(cm, "getActiveNetworkInfo", ret="ni")
        skip = body.fresh_label("offline")
        body.if_goto("==", Local("ni"), None, skip)
        _kontalk_sync_loop(body)
        body.label(skip)
        body.nop()
    else:
        _kontalk_sync_loop(body)
    body.ret(0)
    service.add(body)
    return app.build()


def _kontalk_sync_loop(body) -> None:
    client = body.new("com.turbomanage.httpclient.BasicHttpClient", "client")
    body.call(client, "setReadWriteTimeout", 2000)
    with body.loop():
        region = body.begin_try()
        body.call(client, "get", "http://sync.example.com", ret=body.fresh_local("r").name)
        body.ret(0)
        body.begin_catch(region, "java.io.IOException")
        body.nop()  # no backoff: sync again immediately
        body.end_try(region)


KONTALK_OFFLINE_SYNC = CaseStudy(
    "vi",
    "Kontalk",
    "Frequent synchronizations in offline mode",
    "Disable synchronization in offline",
    Impact.BATTERY_DRAIN,
    # The resolution is the connectivity guard, so that is the flag the
    # fix clears; the (still backoff-free) loop keeps its aggressive
    # warning, which is fair — the paper's Kontalk patch was partial too.
    DefectKind.MISSED_CONNECTIVITY_CHECK,
    ("case.kontalk.SyncService", "onStartCommand"),
    OFFLINE,
    lambda: _kontalk(with_guard=False),
    lambda: _kontalk(with_guard=True),
    symptom=lambda r: r.battery_drain,
)


CASE_STUDIES: tuple[CaseStudy, ...] = (
    FIREFOX_DOWNLOAD,
    YAXIM_LOST_MESSAGE,
    HACKERNEWS_SILENT_FEED,
    CHATSECURE_LOGIN_CRASH,
    CHROME_FROZEN_WEBVIEW,
    KONTALK_OFFLINE_SYNC,
)
