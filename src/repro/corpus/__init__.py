"""Synthetic app corpus: the stand-in for the paper's 285 evaluated apps.

* :mod:`repro.corpus.snippets` — defect code-pattern emitters + ground truth;
* :mod:`repro.corpus.generator` — seeded statistical corpus (Tables 6-8,
  Figs 8-9);
* :mod:`repro.corpus.opensource` — the deterministic 16-app accuracy
  corpus (Table 9);
* :mod:`repro.corpus.lifecycle` — the deterministic corpus for the
  extended-taxonomy checks (Table 6x);
* :mod:`repro.corpus.study` — the §2 empirical-study dataset (Tables 1-3,
  Fig 4).
"""

from .appbuilder import AppBuilder
from .casestudies import CASE_STUDIES, CaseStudy
from .generator import AppStyle, CorpusGenerator
from .groundtruth import (
    AppGroundTruth,
    Confusion,
    OVER_RETRY_KINDS,
    TABLE9_ROWS,
    confusion_for_app,
    overall_accuracy,
    table9_confusions,
)
from .lifecycle import EXTENDED_KINDS, build_lifecycle_corpus
from .opensource import build_opensource_corpus
from .profiles import CorpusProfile, DefectRates, LibraryMix, PAPER_PROFILE
from .snippets import (
    Backoff,
    Connectivity,
    InjectedRequest,
    Notification,
    RequestSpec,
    RetryLoopShape,
    SUPPORTED_LIBRARIES,
    expected_defects,
    inject_request,
)
from .study import (
    IMPACT_CASES,
    REPRESENTATIVE_NPDS,
    ROOT_CAUSE_CASES,
    STUDIED_APPS,
    TOTAL_STUDIED_NPDS,
    impact_distribution_percent,
    root_cause_distribution_percent,
)

__all__ = [
    "AppBuilder",
    "CASE_STUDIES",
    "CaseStudy",
    "AppGroundTruth",
    "AppStyle",
    "Backoff",
    "Confusion",
    "Connectivity",
    "CorpusGenerator",
    "CorpusProfile",
    "DefectRates",
    "EXTENDED_KINDS",
    "IMPACT_CASES",
    "InjectedRequest",
    "LibraryMix",
    "Notification",
    "OVER_RETRY_KINDS",
    "PAPER_PROFILE",
    "REPRESENTATIVE_NPDS",
    "ROOT_CAUSE_CASES",
    "RequestSpec",
    "RetryLoopShape",
    "STUDIED_APPS",
    "SUPPORTED_LIBRARIES",
    "TABLE9_ROWS",
    "TOTAL_STUDIED_NPDS",
    "build_lifecycle_corpus",
    "build_opensource_corpus",
    "confusion_for_app",
    "expected_defects",
    "impact_distribution_percent",
    "inject_request",
    "overall_accuracy",
    "root_cause_distribution_percent",
    "table9_confusions",
]
