"""Request code-pattern emitters and their semantic ground truth.

The corpus generator assembles synthetic apps out of the code shapes the
paper's study found in the wild: connectivity checks (direct, via an app
helper, present-but-not-guarding, or performed in *another* component —
the FN/FP trap shapes of Table 9), config API usage, listener classes
with or without UI notifications, response validity checks, and the
Fig 6 retry-loop shapes.

``inject_request`` writes one request into a method body (creating any
auxiliary listener classes on the app) and returns the **semantic**
defects present — what a human auditor would confirm, independent of
what the static checker manages to see.  The accuracy evaluation
(Table 9) compares checker findings against this ground truth, so the
paper's FP/FN mechanisms (inter-component flows, path-insensitivity)
arise naturally instead of being hard-coded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..core.defects import DefectKind
from ..ir.builder import MethodBuilder
from ..ir.values import BinaryExpr, Const, InstanceOfExpr, Local
from ..libmodels import ALL_LIBRARIES
from ..libmodels.annotations import LibraryModel
from .appbuilder import AppBuilder

_LIBS_BY_KEY: dict[str, LibraryModel] = {lib.key: lib for lib in ALL_LIBRARIES}

_BASIC = "com.turbomanage.httpclient.BasicHttpClient"
_BASIC_RESP = "com.turbomanage.httpclient.HttpResponse"
_VOLLEY_QUEUE = "com.android.volley.RequestQueue"
_VOLLEY_REQ = "com.android.volley.toolbox.StringRequest"
_VOLLEY_POLICY = "com.android.volley.DefaultRetryPolicy"
_OK_CLIENT = "com.squareup.okhttp.OkHttpClient"
_OK_CALL = "com.squareup.okhttp.Call"
_OK_RESP = "com.squareup.okhttp.Response"
_ASYNC_CLIENT = "com.loopj.android.http.AsyncHttpClient"
_APACHE_CLIENT = "org.apache.http.impl.client.DefaultHttpClient"
_URLCONN = "java.net.HttpURLConnection"
_TOAST = "android.widget.Toast"
_HANDLER = "android.os.Handler"
_LOG = "android.util.Log"
_CONN_MGR = "android.net.ConnectivityManager"


class Connectivity(enum.Enum):
    """How (and whether) the request is guarded by a connectivity check."""

    NONE = "none"
    GUARDED = "guarded"  # check + branch around the request
    UNGUARDED = "unguarded"  # check invoked, result ignored (paper's FN shape)
    HELPER = "helper"  # check wrapped in an app utility method
    INTER_COMPONENT = "inter-component"  # checked before starting this
    # component from another one (paper's FP shape)


class Notification(enum.Enum):
    """How failures are surfaced to the user."""

    NONE = "none"
    TOAST = "toast"  # explicit UI message
    HANDLER = "handler"  # message handed to the UI thread
    LOG = "log"  # developer log only: the user sees nothing
    BROADCAST = "broadcast"  # error broadcast, shown by another activity
    # (paper's notification-FP shape)


class RetryLoopShape(enum.Enum):
    NONE = "none"
    UNCONDITIONAL_EXIT = "fig6b"
    CATCH_DEPENDENT = "fig6c"
    CALLEE_CATCH = "fig6d"


class Backoff(enum.Enum):
    NONE = "none"
    FIXED_SMALL = "fixed"  # Thread.sleep(500) — still aggressive
    EXPONENTIAL = "exponential"


@dataclass
class RequestSpec:
    """Everything that varies about one injected request."""

    library: str = "basichttp"
    http_post: bool = False
    connectivity: Connectivity = Connectivity.NONE
    with_timeout: bool = False
    timeout_ms: int = 10_000
    with_retry: bool = False
    retry_value: int = 2
    with_notification: Notification = Notification.NONE
    with_response_check: bool = False
    uses_error_types: bool = False  # Volley only
    retry_loop: RetryLoopShape = RetryLoopShape.NONE
    backoff: Backoff = Backoff.NONE
    #: OkHttp only: use the asynchronous enqueue/Callback path instead of
    #: the blocking execute() one.
    use_async: bool = False
    url: str = "http://api.example.com/data"

    @property
    def lib(self) -> LibraryModel:
        return _LIBS_BY_KEY[self.library]


# ---------------------------------------------------------------------------
# Semantic ground truth
# ---------------------------------------------------------------------------


def expected_defects(
    spec: RequestSpec, user_initiated: bool, background: bool
) -> set[DefectKind]:
    """The defects a human auditor would confirm for this request."""
    lib = spec.lib
    defects: set[DefectKind] = set()

    connectivity_ok = spec.connectivity in (
        Connectivity.GUARDED,
        Connectivity.HELPER,
        Connectivity.INTER_COMPONENT,  # checked, just elsewhere
    )
    if not connectivity_ok:
        defects.add(DefectKind.MISSED_CONNECTIVITY_CHECK)

    # Volley's setRetryPolicy installs a DefaultRetryPolicy whose first
    # argument *is* the timeout, so configuring retries configures the
    # timeout too.
    timeout_configured = spec.with_timeout or (
        spec.library == "volley" and spec.with_retry
    )
    if lib.has_timeout_api and not timeout_configured:
        defects.add(DefectKind.MISSED_TIMEOUT)

    has_custom_retry = spec.retry_loop is not RetryLoopShape.NONE
    # ...and conversely, configuring a Volley timeout goes through
    # setRetryPolicy, which is the retry API.
    retry_configured = spec.with_retry or (
        spec.library == "volley" and spec.with_timeout
    )
    if lib.has_retry_api and not retry_configured and not has_custom_retry:
        defects.add(DefectKind.MISSED_RETRY)

    retries = spec.retry_value if spec.with_retry else lib.defaults.retries
    retries_from_default = not spec.with_retry
    effective_for_user = max(retries, 1) if has_custom_retry else retries
    if lib.has_retry_api:
        # POSTs are exempt from the time-sensitivity rule (HTTP/1.1's
        # MUST-NOT-retry dominates).
        if user_initiated and effective_for_user == 0 and not spec.http_post:
            defects.add(DefectKind.NO_RETRY_TIME_SENSITIVE)
        if background and retries > 0:
            defects.add(DefectKind.OVER_RETRY_SERVICE)
        if spec.http_post and retries > 0:
            if not (retries_from_default and not lib.defaults.retries_apply_to_post):
                defects.add(DefectKind.OVER_RETRY_POST)

    if user_initiated:
        notified = spec.with_notification in (
            Notification.TOAST,
            Notification.HANDLER,
            Notification.BROADCAST,  # surfaced, just in another component
        )
        if not notified:
            defects.add(DefectKind.MISSED_NOTIFICATION)
        if (
            lib.exposes_error_types
            and not spec.uses_error_types
        ):
            defects.add(DefectKind.MISSED_ERROR_TYPE_CHECK)

    if (
        lib.has_response_check_api
        and not lib.defaults.auto_response_check
        and not spec.with_response_check
        and spec.retry_loop is RetryLoopShape.NONE  # loop shapes discard
        # the response, so there is nothing to misuse
    ):
        defects.add(DefectKind.MISSED_RESPONSE_CHECK)

    if has_custom_retry and spec.backoff in (Backoff.NONE, Backoff.FIXED_SMALL):
        defects.add(DefectKind.AGGRESSIVE_RETRY_LOOP)
    return defects


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


@dataclass
class InjectedRequest:
    """Record of one emitted request, for the ground-truth ledger."""

    spec: RequestSpec
    host_class: str
    host_method: str
    expected: set[DefectKind] = field(default_factory=set)


def inject_request(
    app: AppBuilder,
    body: MethodBuilder,
    spec: RequestSpec,
    user_initiated: bool,
    background: bool = False,
) -> InjectedRequest:
    """Emit the request described by ``spec`` into ``body``.

    Auxiliary classes (listeners, helpers) are added to ``app``.  Returns
    the ground-truth record.
    """
    skip_label = _emit_connectivity(app, body, spec)
    emitter = _EMITTERS[spec.library]
    host_override = emitter(app, body, spec, user_initiated)
    if skip_label is not None:
        body.label(skip_label)
        body.nop()
    host_class, host_method = host_override or (body.sig.class_name, body.sig.name)
    return InjectedRequest(
        spec,
        host_class,
        host_method,
        expected_defects(spec, user_initiated, background),
    )


def _emit_connectivity(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec
) -> Optional[str]:
    """Emit the connectivity-check prologue; returns the label the guard
    jumps to (to be bound after the request) or None."""
    if spec.connectivity in (Connectivity.NONE, Connectivity.INTER_COMPONENT):
        return None
    if spec.connectivity is Connectivity.HELPER:
        helper_cls = _ensure_net_helper(app)
        online = body.static_call(
            helper_cls, "isNetworkOnline", ret=body.fresh_local("online").name,
            return_type="boolean",
        )
        skip = body.fresh_label("offline")
        body.if_goto("==", online, False, skip)
        return skip
    cm = body.new(_CONN_MGR, body.fresh_local("cm").name)
    ni = body.call(
        cm, "getActiveNetworkInfo", ret=body.fresh_local("ni").name, cls=_CONN_MGR,
        return_type="android.net.NetworkInfo",
    )
    if spec.connectivity is Connectivity.UNGUARDED:
        # The check's result never guards the request (paper's FN shape):
        # log it and fall through.
        body.static_call(_LOG, "d", "net", "state checked", ret=None)
        return None
    skip = body.fresh_label("offline")
    body.if_goto("==", ni, None, skip)
    return skip


def _ensure_net_helper(app: AppBuilder) -> str:
    name = f"{app.package}.NetUtils"
    try:
        app.get_class_builder(name)
        return name
    except KeyError:
        pass
    helper = app.new_class("NetUtils")
    b = helper.method("isNetworkOnline", return_type="boolean", is_static=True)
    cm = b.new(_CONN_MGR, "cm")
    ni = b.call(cm, "getActiveNetworkInfo", ret="ni", cls=_CONN_MGR)
    with b.if_then("==", ni, None):
        b.ret(False)
    b.ret(True)
    helper.add(b)
    return name


def _emit_notification(app: AppBuilder, body: MethodBuilder, spec: RequestSpec) -> None:
    """Emit the failure-path reaction selected by the spec."""
    kind = spec.with_notification
    if kind is Notification.TOAST:
        toast = body.static_call(
            _TOAST, "makeText", "ctx", "Network error", 0,
            ret=body.fresh_local("toast").name, return_type=_TOAST,
        )
        body.call(toast, "show", cls=_TOAST)
    elif kind is Notification.HANDLER:
        handler = body.new(_HANDLER, body.fresh_local("h").name)
        body.call(handler, "sendEmptyMessage", 1, cls=_HANDLER)
    elif kind is Notification.LOG:
        body.static_call(_LOG, "e", "net", "request failed", ret=None)
    elif kind is Notification.BROADCAST:
        intent = body.new("android.content.Intent", body.fresh_local("i").name)
        body.call(intent, "putExtra", "error_code", 1, cls="android.content.Intent")
        body.static_call(
            "android.content.Context", "sendBroadcast", intent, ret=None
        )
    # Notification.NONE: silence.


def _emit_response_use(
    body: MethodBuilder, spec: RequestSpec, response: Local, response_cls: str,
    body_method: str,
) -> None:
    """Emit the (optionally guarded) response dereference."""
    if spec.with_response_check:
        if spec.library == "okhttp":
            ok = body.call(
                response, "isSuccessful", ret=body.fresh_local("ok").name,
                cls=_OK_RESP, return_type="boolean",
            )
            with body.if_then("==", ok, True):
                body.call(
                    response, body_method, ret=body.fresh_local("data").name,
                    cls=response_cls,
                )
        else:
            with body.if_then("!=", response, None):
                status = body.call(
                    response, "getStatus", ret=body.fresh_local("st").name,
                    cls=response_cls, return_type="int",
                )
                with body.if_then("<", status, 400):
                    body.call(
                        response, body_method,
                        ret=body.fresh_local("data").name, cls=response_cls,
                    )
    else:
        body.call(
            response, body_method, ret=body.fresh_local("data").name,
            cls=response_cls,
        )


# -- per-library emitters ----------------------------------------------------


def _emit_basichttp(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec, user: bool
) -> None:
    client = body.new(_BASIC, body.fresh_local("client").name)
    if spec.with_timeout:
        body.call(client, "setReadWriteTimeout", spec.timeout_ms, cls=_BASIC)
    if spec.with_retry:
        body.call(client, "setMaxRetries", spec.retry_value, cls=_BASIC)
    verb = "post" if spec.http_post else "get"

    if spec.retry_loop is not RetryLoopShape.NONE:
        return _emit_retry_loop(app, body, spec, client, verb)

    region = body.begin_try()
    response = body.call(
        client, verb, spec.url, ret=body.fresh_local("resp").name,
        cls=_BASIC, return_type=_BASIC_RESP,
    )
    _emit_response_use(body, spec, response, _BASIC_RESP, "getBodyAsString")
    body.begin_catch(region, "java.io.IOException")
    _emit_notification(app, body, spec)
    body.end_try(region)


def _emit_httpurlconnection(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec, user: bool
) -> None:
    conn = body.new(_URLCONN, body.fresh_local("conn").name)
    if spec.with_timeout:
        body.call(conn, "setConnectTimeout", spec.timeout_ms, cls=_URLCONN)
        body.call(conn, "setReadTimeout", spec.timeout_ms, cls=_URLCONN)
    if spec.http_post:
        body.call(conn, "setRequestMethod", "POST", cls=_URLCONN)
        body.call(conn, "setDoOutput", True, cls=_URLCONN)
    if spec.retry_loop is not RetryLoopShape.NONE:
        return _emit_retry_loop(app, body, spec, conn, "getInputStream")
    region = body.begin_try()
    stream = body.call(
        conn, "getInputStream", ret=body.fresh_local("in").name, cls=_URLCONN,
        return_type="java.io.InputStream",
    )
    body.call(stream, "read", cls="java.io.InputStream", ret=body.fresh_local("n").name)
    body.begin_catch(region, "java.io.IOException")
    _emit_notification(app, body, spec)
    body.end_try(region)


def _emit_apache(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec, user: bool
) -> None:
    client = body.new(_APACHE_CLIENT, body.fresh_local("client").name)
    if spec.with_timeout:
        params = body.call(
            client, "getParams", ret=body.fresh_local("params").name,
            cls=_APACHE_CLIENT, return_type="org.apache.http.params.HttpParams",
        )
        body.static_call(
            "org.apache.http.params.HttpConnectionParams",
            "setConnectionTimeout", params, spec.timeout_ms, ret=None,
        )
    if spec.with_retry:
        handler = body.new(
            "org.apache.http.impl.client.DefaultHttpRequestRetryHandler",
            body.fresh_local("rh").name, args=[spec.retry_value, False],
        )
        body.call(client, "setHttpRequestRetryHandler", handler, cls=_APACHE_CLIENT)
    req_cls = (
        "org.apache.http.client.methods.HttpPost"
        if spec.http_post
        else "org.apache.http.client.methods.HttpGet"
    )
    reqobj = body.new(req_cls, body.fresh_local("req").name, args=[spec.url])
    if spec.retry_loop is not RetryLoopShape.NONE:
        return _emit_retry_loop(app, body, spec, client, "execute", extra_args=(reqobj,))
    region = body.begin_try()
    response = body.call(
        client, "execute", reqobj, ret=body.fresh_local("resp").name,
        cls=_APACHE_CLIENT, return_type="org.apache.http.HttpResponse",
    )
    body.call(
        response, "getEntity", ret=body.fresh_local("entity").name,
        cls="org.apache.http.HttpResponse",
    )
    body.begin_catch(region, "java.io.IOException")
    _emit_notification(app, body, spec)
    body.end_try(region)


def _emit_okhttp(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec, user: bool
) -> None:
    client = body.new(_OK_CLIENT, body.fresh_local("client").name)
    if spec.with_timeout:
        body.call(client, "setReadTimeout", spec.timeout_ms, cls=_OK_CLIENT)
    if spec.with_retry:
        body.call(
            client, "setRetryOnConnectionFailure",
            spec.retry_value > 0, cls=_OK_CLIENT,
        )
    call = body.call(
        client, "newCall", spec.url, ret=body.fresh_local("call").name,
        cls=_OK_CLIENT, return_type=_OK_CALL,
    )
    if spec.use_async:
        callback_cls = _make_okhttp_callback(app, spec)
        callback = body.new(callback_cls, body.fresh_local("cb").name)
        body.call(call, "enqueue", callback, cls=_OK_CALL)
        return
    region = body.begin_try()
    response = body.call(
        call, "execute", ret=body.fresh_local("resp").name, cls=_OK_CALL,
        return_type=_OK_RESP,
    )
    _emit_response_use(body, spec, response, _OK_RESP, "body")
    body.begin_catch(region, "java.io.IOException")
    _emit_notification(app, body, spec)
    body.end_try(region)


def _make_okhttp_callback(app: AppBuilder, spec: RequestSpec) -> str:
    """An OkHttp Callback class: onResponse dereferences the response
    (optionally behind isSuccessful) and onFailure carries the spec's
    notification behaviour."""
    name = app.fresh_name("OkCallback")
    cls = app.new_class(name, interfaces=["com.squareup.okhttp.Callback"])
    ok = cls.method("onResponse", params=[(_OK_RESP, "response")])
    _emit_response_use(ok, spec, Local("response", _OK_RESP), _OK_RESP, "body")
    ok.ret()
    cls.add(ok)
    fail = cls.method(
        "onFailure",
        params=[("com.squareup.okhttp.Request", "req"), ("java.io.IOException", "e")],
    )
    _emit_notification(app, fail, spec)
    fail.ret()
    cls.add(fail)
    return name


def _emit_asynchttp(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec, user: bool
) -> None:
    client = body.new(_ASYNC_CLIENT, body.fresh_local("client").name)
    if spec.with_timeout:
        body.call(client, "setTimeout", spec.timeout_ms, cls=_ASYNC_CLIENT)
    if spec.with_retry:
        body.call(
            client, "setMaxRetriesAndTimeout", spec.retry_value, 1000,
            cls=_ASYNC_CLIENT,
        )
    handler_cls = _make_async_handler(app, spec)
    handler = body.new(handler_cls, body.fresh_local("handler").name)
    verb = "post" if spec.http_post else "get"
    body.call(client, verb, spec.url, handler, cls=_ASYNC_CLIENT)


def _make_async_handler(app: AppBuilder, spec: RequestSpec) -> str:
    name = app.fresh_name("ResponseHandler")
    cls = app.new_class(
        name, interfaces=["com.loopj.android.http.AsyncHttpResponseHandler"]
    )
    b = cls.method("onSuccess", params=[("java.lang.String", "response")])
    b.static_call(_LOG, "d", "net", "ok", ret=None)
    b.ret()
    cls.add(b)
    b = cls.method(
        "onFailure",
        params=[
            ("int", "statusCode"),
            ("java.lang.Object", "headers"),
            ("java.lang.String", "responseBody"),
            ("java.lang.Throwable", "error"),
        ],
    )
    _emit_notification(app, b, spec)
    b.ret()
    cls.add(b)
    return name


def _emit_volley(
    app: AppBuilder, body: MethodBuilder, spec: RequestSpec, user: bool
) -> None:
    queue = body.new(_VOLLEY_QUEUE, body.fresh_local("queue").name)
    listener_cls = _make_volley_listener(app)
    error_cls = _make_volley_error_listener(app, spec)
    listener = body.new(listener_cls, body.fresh_local("listener").name)
    error = body.new(error_cls, body.fresh_local("errl").name)
    method_code = 1 if spec.http_post else 0
    request = body.new(
        _VOLLEY_REQ,
        body.fresh_local("request").name,
        args=[Const(method_code), spec.url, listener, error],
    )
    if spec.with_retry or spec.with_timeout:
        timeout = spec.timeout_ms if spec.with_timeout else 2500
        retries = spec.retry_value if spec.with_retry else 1
        policy = body.new(
            _VOLLEY_POLICY,
            body.fresh_local("policy").name,
            args=[Const(timeout), Const(retries), Const(1)],
        )
        body.call(request, "setRetryPolicy", policy, cls="com.android.volley.Request")
    body.call(queue, "add", request, cls=_VOLLEY_QUEUE)


def _make_volley_listener(app: AppBuilder) -> str:
    name = app.fresh_name("OkListener")
    cls = app.new_class(name, interfaces=["com.android.volley.Response$Listener"])
    b = cls.method("onResponse", params=[("java.lang.String", "response")])
    b.static_call(_LOG, "d", "net", "ok", ret=None)
    b.ret()
    cls.add(b)
    return name


def _make_volley_error_listener(app: AppBuilder, spec: RequestSpec) -> str:
    name = app.fresh_name("ErrListener")
    cls = app.new_class(name, interfaces=["com.android.volley.Response$ErrorListener"])
    b = cls.method(
        "onErrorResponse", params=[("com.android.volley.VolleyError", "error")]
    )
    if spec.uses_error_types:
        b.assign(
            "isConn",
            InstanceOfExpr(Local("error"), "com.android.volley.NoConnectionError"),
        )
        with b.if_then("==", Local("isConn"), True):
            _emit_notification(app, b, spec)
        b.ret()
    else:
        _emit_notification(app, b, spec)
        b.ret()
    cls.add(b)
    return name


# -- customized retry loops (Fig 6 shapes) ------------------------------------


def _emit_retry_loop(
    app: AppBuilder,
    body: MethodBuilder,
    spec: RequestSpec,
    client: Local,
    verb: str,
    extra_args: tuple = (),
) -> None:
    if spec.retry_loop is RetryLoopShape.CALLEE_CATCH:
        return _emit_fig6d(app, body, spec, client, verb, extra_args)
    if spec.retry_loop is RetryLoopShape.UNCONDITIONAL_EXIT:
        return _emit_fig6b(app, body, spec, client, verb, extra_args)
    return _emit_fig6c(app, body, spec, client, verb, extra_args)


def _request_args(spec: RequestSpec, extra_args: tuple) -> tuple:
    return extra_args if extra_args else (spec.url,)


def _emit_backoff(body: MethodBuilder, spec: RequestSpec, delay_local: str) -> None:
    if spec.backoff is Backoff.NONE:
        return
    if spec.backoff is Backoff.FIXED_SMALL:
        body.static_call("java.lang.Thread", "sleep", 500, ret=None)
        return
    # Exponential: delay doubles every attempt.
    body.assign(delay_local, BinaryExpr("*", Local(delay_local), Const(2)))
    body.static_call("java.lang.Thread", "sleep", Local(delay_local), ret=None)


def _emit_fig6b(app, body, spec, client, verb, extra_args) -> None:
    """for(;;) { try { send; return; } catch (e) { [backoff] } }"""
    body.assign("delay", 250)
    with body.loop():
        region = body.begin_try()
        body.call(
            client, verb, *_request_args(spec, extra_args),
            ret=body.fresh_local("resp").name,
            cls=client.type_hint,
        )
        body.ret()
        body.begin_catch(region, "java.io.IOException")
        _emit_notification(app, body, spec)
        _emit_backoff(body, spec, "delay")
        body.end_try(region)


def _emit_fig6c(app, body, spec, client, verb, extra_args) -> None:
    """while (retry) { try { send; retry=false; } catch { retry=shouldRetry(); } }"""
    body.assign("retry", True)
    body.assign("delay", 250)
    with body.while_loop("==", Local("retry"), True):
        region = body.begin_try()
        body.call(
            client, verb, *_request_args(spec, extra_args),
            ret=body.fresh_local("resp").name,
            cls=client.type_hint,
        )
        body.assign("retry", False)
        body.begin_catch(region, "java.io.IOException")
        _emit_notification(app, body, spec)
        _emit_backoff(body, spec, "delay")
        should = body.static_call(
            "java.lang.Math", "random", ret="should", return_type="boolean"
        )
        body.assign("retry", Local("should"))
        body.end_try(region)


def _emit_fig6d(app, body, spec, client, verb, extra_args) -> tuple[str, str]:
    """while (!success) { success = sendOnce(...); } with sendOnce catching
    IOException into its boolean return.

    The request physically lands in the helper method, so its (class,
    method) pair is returned for the ground-truth ledger.
    """
    helper_cls = app.get_class_builder(body.sig.class_name)
    helper_name = f"sendOnceFor_{body.sig.name}"
    hb = helper_cls.method(
        helper_name,
        params=[(client.type_hint or "java.lang.Object", "client")],
        return_type="boolean",
    )
    region = hb.begin_try()
    if client.type_hint == _APACHE_CLIENT:
        # Apache sends request *objects*: rebuild one inside the helper so
        # POST detection sees the same shape as the straight-line emitter.
        req_cls = (
            "org.apache.http.client.methods.HttpPost"
            if spec.http_post
            else "org.apache.http.client.methods.HttpGet"
        )
        reqobj = hb.new(req_cls, hb.fresh_local("req").name, args=[spec.url])
        hb.call(
            Local("client", client.type_hint), verb, reqobj,
            ret=hb.fresh_local("resp").name, cls=client.type_hint,
        )
    else:
        hb.call(
            Local("client", client.type_hint), verb, spec.url,
            ret=hb.fresh_local("resp").name, cls=client.type_hint,
        )
    hb.ret(True)
    hb.begin_catch(region, "java.io.IOException")
    _emit_notification(app, hb, spec)
    hb.ret(False)
    hb.end_try(region)
    helper_cls.add(hb)

    body.assign("success", False)
    body.assign("delay", 250)
    with body.while_loop("==", Local("success"), False):
        _emit_backoff(body, spec, "delay")
        body.call(
            Local("this"), helper_name, client,
            ret="success", cls=body.sig.class_name, return_type="boolean",
        )
    return helper_cls.name, helper_name


_EMITTERS = {
    "basichttp": _emit_basichttp,
    "httpurlconnection": _emit_httpurlconnection,
    "apache": _emit_apache,
    "okhttp": _emit_okhttp,
    "asynchttp": _emit_asynchttp,
    "volley": _emit_volley,
}

SUPPORTED_LIBRARIES = tuple(_EMITTERS)
