"""Deterministic corpus for the extended taxonomy checks (Table 6x).

Each app exercises one defect class of the thread-context &
callback-lifecycle analyses — a buggy shape that must be flagged and the
matching clean shapes that must *not* be (the precision side of the
extended Table 6 accounting):

* ``ui-thread-network`` — a blocking request reachable from a
  main-thread entry point, direct (``onClick``) and through an app
  helper (``onCreate`` → ``fetchData``); clean variants hand the same
  request to an ``AsyncTask.doInBackground`` or use the library's
  asynchronous ``enqueue`` path.
* ``callback-leak`` — ``registerReceiver`` / ``registerNetworkCallback``
  with no unregistration reachable from any lifecycle exit method;
  clean variants release directly (``onDestroy``) or through a helper
  invoked from ``onPause``.
* ``missed-offline-cache`` — connectivity-guarded requests (inline and
  helper-guarded) whose offline branch has no cached-response fallback;
  clean variants write an ``LruCache`` (inline or via a helper) or skip
  the guard entirely (the connectivity check's territory, not ours).

The ground-truth ledger reuses :class:`~repro.corpus.snippets.
InjectedRequest` records with explicit ``expected`` sets restricted to
the extended kinds, so :func:`~repro.corpus.groundtruth.
confusion_for_app` scores precision/recall per kind exactly like
Table 9 does for the paper's kinds.
"""

from __future__ import annotations

from ..app.apk import APK
from ..core.defects import DefectKind
from .appbuilder import AppBuilder
from .groundtruth import AppGroundTruth
from .snippets import Connectivity, Notification, RequestSpec, inject_request

_CONN_MGR = "android.net.ConnectivityManager"
_CONTEXT = "android.content.Context"
_LRU_CACHE = "android.util.LruCache"

#: The defect kinds the lifecycle corpus measures (extended Table 6 rows).
EXTENDED_KINDS: tuple[DefectKind, ...] = (
    DefectKind.UI_THREAD_NETWORK,
    DefectKind.CALLBACK_LEAK,
    DefectKind.MISSED_OFFLINE_CACHE,
)


def _record(
    truth: AppGroundTruth, record, *extra: DefectKind
) -> None:
    """Keep only the extended-kind expectations on an injected request —
    the paper kinds are scored by Table 9, not here."""
    record.expected = {k for k in record.expected if k in EXTENDED_KINDS}
    record.expected.update(extra)
    truth.requests.append(record)


def _marker(
    truth: AppGroundTruth, host_class: str, host_method: str, *kinds: DefectKind
) -> None:
    """A ledger entry for a defect with no network request of its own
    (callback leaks): only the (class, method, kind) triple matters."""
    from .snippets import InjectedRequest

    truth.requests.append(
        InjectedRequest(RequestSpec(), host_class, host_method, set(kinds))
    )


# ---------------------------------------------------------------------------
# ui-thread-network
# ---------------------------------------------------------------------------


def _ui_thread_buggy_direct() -> tuple[APK, AppGroundTruth]:
    """Blocking request straight inside a UI callback."""
    app = AppBuilder("org.lifecycle.uidirect")
    truth = AppGroundTruth(app.package)
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    record = inject_request(
        app, body, RequestSpec(with_notification=Notification.TOAST),
        user_initiated=True,
    )
    body.ret()
    activity.add(body)
    _record(truth, record, DefectKind.UI_THREAD_NETWORK)
    return app.build(), truth


def _ui_thread_buggy_helper() -> tuple[APK, AppGroundTruth]:
    """Blocking request in an app helper called from ``onCreate`` — the
    main-thread context must propagate over the direct call edge."""
    app = AppBuilder("org.lifecycle.uihelper")
    truth = AppGroundTruth(app.package)
    activity = app.activity("SplashActivity")
    helper = activity.method("fetchData")
    record = inject_request(
        app, helper, RequestSpec(with_notification=Notification.TOAST),
        user_initiated=True,
    )
    helper.ret()
    activity.add(helper)
    from ..ir.values import Local

    body = activity.method("onCreate", params=[("android.os.Bundle", "saved")])
    body.call(Local("this"), "fetchData", cls=f"{app.package}.SplashActivity")
    body.ret()
    activity.add(body)
    _record(truth, record, DefectKind.UI_THREAD_NETWORK)
    return app.build(), truth


def _ui_thread_clean_task() -> tuple[APK, AppGroundTruth]:
    """The canonical fix: the blocking request lives in
    ``AsyncTask.doInBackground``, dispatched from the UI callback."""
    app = AppBuilder("org.lifecycle.uitask")
    truth = AppGroundTruth(app.package)
    task = app.async_task("FetchTask")
    work = task.method(
        "doInBackground", params=[("java.lang.Object", "params")],
        return_type="java.lang.Object",
    )
    record = inject_request(
        app, work, RequestSpec(with_notification=Notification.HANDLER),
        user_initiated=True,
    )
    work.ret(None)
    task.add(work)

    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    t = body.new(f"{app.package}.FetchTask", body.fresh_local("task").name)
    body.call(t, "execute", cls=f"{app.package}.FetchTask")
    body.ret()
    activity.add(body)
    _record(truth, record)  # background context: no UI-thread defect
    return app.build(), truth


def _ui_thread_clean_async() -> tuple[APK, AppGroundTruth]:
    """The library's own asynchronous path (OkHttp ``enqueue``) — the
    request site never blocks whatever thread runs it."""
    app = AppBuilder("org.lifecycle.uiasync")
    truth = AppGroundTruth(app.package)
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    record = inject_request(
        app, body, RequestSpec(library="okhttp", use_async=True),
        user_initiated=True,
    )
    body.ret()
    activity.add(body)
    _record(truth, record)
    return app.build(), truth


# ---------------------------------------------------------------------------
# callback-leak
# ---------------------------------------------------------------------------


def _emit_register_receiver(body) -> None:
    from ..ir.values import Local

    recv = body.new("android.content.BroadcastReceiver", body.fresh_local("recv").name)
    body.call(Local("this"), "registerReceiver", recv, cls=_CONTEXT)


def _leak_buggy_activity() -> tuple[APK, AppGroundTruth]:
    """Receiver registered in ``onResume``; no exit path releases it."""
    app = AppBuilder("org.lifecycle.leakactivity")
    truth = AppGroundTruth(app.package)
    activity = app.activity("RadioActivity")
    body = activity.method("onResume")
    _emit_register_receiver(body)
    body.ret()
    activity.add(body)
    _marker(
        truth, f"{app.package}.RadioActivity", "onResume", DefectKind.CALLBACK_LEAK
    )
    return app.build(), truth


def _leak_buggy_service() -> tuple[APK, AppGroundTruth]:
    """Network callback registered in a Service's ``onCreate`` with no
    ``onDestroy`` at all — nothing can ever release it."""
    app = AppBuilder("org.lifecycle.leakservice")
    truth = AppGroundTruth(app.package)
    service = app.service("WatchService")
    body = service.method("onCreate")
    cm = body.new(_CONN_MGR, body.fresh_local("cm").name)
    cb = body.new(
        "android.net.ConnectivityManager$NetworkCallback",
        body.fresh_local("cb").name,
    )
    body.call(cm, "registerNetworkCallback", cb, cls=_CONN_MGR)
    body.ret()
    service.add(body)
    _marker(
        truth, f"{app.package}.WatchService", "onCreate", DefectKind.CALLBACK_LEAK
    )
    return app.build(), truth


def _leak_clean_activity() -> tuple[APK, AppGroundTruth]:
    """Register in ``onResume``, release through a helper reached from
    ``onPause`` — the unregistration is found in the exit cone, not the
    exit method itself."""
    from ..ir.values import Local

    app = AppBuilder("org.lifecycle.cleanactivity")
    truth = AppGroundTruth(app.package)
    activity = app.activity("RadioActivity")
    cls_name = f"{app.package}.RadioActivity"

    body = activity.method("onResume")
    _emit_register_receiver(body)
    body.ret()
    activity.add(body)

    helper = activity.method("releaseReceiver")
    recv = helper.new("android.content.BroadcastReceiver", "recv")
    helper.call(Local("this"), "unregisterReceiver", recv, cls=_CONTEXT)
    helper.ret()
    activity.add(helper)

    body = activity.method("onPause")
    body.call(Local("this"), "releaseReceiver", cls=cls_name)
    body.ret()
    activity.add(body)
    _marker(truth, cls_name, "onResume")  # expected: nothing
    return app.build(), truth


def _leak_clean_service() -> tuple[APK, AppGroundTruth]:
    """Register in ``onCreate``, unregister directly in ``onDestroy``."""
    app = AppBuilder("org.lifecycle.cleanservice")
    truth = AppGroundTruth(app.package)
    service = app.service("WatchService")

    body = service.method("onCreate")
    cm = body.new(_CONN_MGR, body.fresh_local("cm").name)
    cb = body.new(
        "android.net.ConnectivityManager$NetworkCallback",
        body.fresh_local("cb").name,
    )
    body.call(cm, "registerNetworkCallback", cb, cls=_CONN_MGR)
    body.ret()
    service.add(body)

    body = service.method("onDestroy")
    cm = body.new(_CONN_MGR, body.fresh_local("cm").name)
    cb = body.new(
        "android.net.ConnectivityManager$NetworkCallback",
        body.fresh_local("cb").name,
    )
    body.call(cm, "unregisterNetworkCallback", cb, cls=_CONN_MGR)
    body.ret()
    service.add(body)
    _marker(truth, f"{app.package}.WatchService", "onCreate")
    return app.build(), truth


# ---------------------------------------------------------------------------
# missed-offline-cache
# ---------------------------------------------------------------------------


def _service_request(
    package_leaf: str, spec: RequestSpec
) -> tuple[AppBuilder, AppGroundTruth, object, object]:
    """A Service whose ``onStartCommand`` hosts one injected request;
    returns the open builder/body so callers can append cache code."""
    app = AppBuilder(f"org.lifecycle.{package_leaf}")
    truth = AppGroundTruth(app.package)
    service = app.service("SyncService")
    body = service.method(
        "onStartCommand",
        params=[("android.content.Intent", "intent"), ("int", "flags")],
        return_type="int",
    )
    record = inject_request(app, body, spec, user_initiated=False, background=True)
    return app, truth, (service, body), record


def _finish_service(app, service, body) -> APK:
    body.ret(0)
    service.add(body)
    return app.build()


def _offline_buggy_guarded() -> tuple[APK, AppGroundTruth]:
    """Connectivity-guarded request, offline branch does nothing."""
    app, truth, (service, body), record = _service_request(
        "offlineguarded", RequestSpec(connectivity=Connectivity.GUARDED)
    )
    apk = _finish_service(app, service, body)
    _record(truth, record, DefectKind.MISSED_OFFLINE_CACHE)
    return apk, truth


def _offline_buggy_helper_guard() -> tuple[APK, AppGroundTruth]:
    """Same defect behind an app connectivity helper (``NetUtils``)."""
    app, truth, (service, body), record = _service_request(
        "offlinehelper", RequestSpec(connectivity=Connectivity.HELPER)
    )
    apk = _finish_service(app, service, body)
    _record(truth, record, DefectKind.MISSED_OFFLINE_CACHE)
    return apk, truth


def _offline_clean_cache() -> tuple[APK, AppGroundTruth]:
    """The fix: the successful response is written to an ``LruCache``."""
    app, truth, (service, body), record = _service_request(
        "offlinecached", RequestSpec(connectivity=Connectivity.GUARDED)
    )
    cache = body.new(_LRU_CACHE, body.fresh_local("cache").name)
    body.call(cache, "put", "latest", "data", cls=_LRU_CACHE)
    apk = _finish_service(app, service, body)
    _record(truth, record)
    return apk, truth


def _offline_clean_helper_cache() -> tuple[APK, AppGroundTruth]:
    """The cache fallback lives in a helper method in the request's
    caller closure — reach counts, not the request method itself."""
    from ..ir.values import Local

    app, truth, (service, body), record = _service_request(
        "offlinehelpercache", RequestSpec(connectivity=Connectivity.GUARDED)
    )
    cls_name = f"{app.package}.SyncService"
    body.call(Local("this"), "persist", cls=cls_name)

    helper = service.method("persist")
    cache = helper.new(_LRU_CACHE, "cache")
    helper.call(cache, "put", "latest", "data", cls=_LRU_CACHE)
    helper.ret()
    service.add(helper)

    apk = _finish_service(app, service, body)
    _record(truth, record)
    return apk, truth


def _offline_clean_unguarded() -> tuple[APK, AppGroundTruth]:
    """No connectivity check at all: that is the connectivity check's
    finding; reporting a missing cache too would double-count it."""
    app, truth, (service, body), record = _service_request(
        "offlineunguarded", RequestSpec(connectivity=Connectivity.NONE)
    )
    apk = _finish_service(app, service, body)
    _record(truth, record)
    return apk, truth


_BUILDERS = (
    _ui_thread_buggy_direct,
    _ui_thread_buggy_helper,
    _ui_thread_clean_task,
    _ui_thread_clean_async,
    _leak_buggy_activity,
    _leak_buggy_service,
    _leak_clean_activity,
    _leak_clean_service,
    _offline_buggy_guarded,
    _offline_buggy_helper_guard,
    _offline_clean_cache,
    _offline_clean_helper_cache,
    _offline_clean_unguarded,
)


def build_lifecycle_corpus() -> list[tuple[APK, AppGroundTruth]]:
    """Build the deterministic lifecycle-corpus apps (buggy + clean
    variants for each extended defect class)."""
    return [builder() for builder in _BUILDERS]
