"""The 16-app "open-source" corpus for the accuracy evaluation (Table 9).

The paper measured accuracy on 16 open-source apps by manually verifying
every warning against source.  This module builds a deterministic 16-app
corpus whose defect roster reproduces Table 9 exactly:

=============================  =======  ===  =========
NPD cause                      correct  FP   known FN
=============================  =======  ===  =========
Missed conn. checks            31       4    5
Missed timeout APIs            58       0    0
Missed retry APIs              12       0    0
Over retries                   4        0    0
Missed failure notifications   20       5    0
Missed response checks         5        0    0
=============================  =======  ===  =========

The false positives and negatives are not injected as labels — they
emerge from the same analysis limitations the paper reports: the four
connectivity FPs come from two apps that check connectivity in a launcher
activity before starting the requesting activity (inter-component flow,
§5.3); the five FNs come from one app whose checks do not control-guard
the requests (path-insensitivity); the five notification FPs come from
one app that broadcasts the error code and shows the message in another
activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..app.apk import APK
from .appbuilder import AppBuilder
from .groundtruth import AppGroundTruth
from .snippets import (
    Connectivity,
    Notification,
    RequestSpec,
    inject_request,
)

_UI_METHODS = (
    "onClick",
    "onLongClick",
    "onItemClick",
    "onMenuItemClick",
    "onOptionsItemSelected",
    "onRefresh",
    "onEditorAction",
    "onQueryTextSubmit",
)
_UI_PARAMS = {
    "onClick": [("android.view.View", "v")],
    "onLongClick": [("android.view.View", "v")],
    "onItemClick": [("android.widget.AdapterView", "parent"), ("int", "pos")],
    "onMenuItemClick": [("android.view.MenuItem", "item")],
    "onOptionsItemSelected": [("android.view.MenuItem", "item")],
    "onRefresh": [],
    "onEditorAction": [("android.widget.TextView", "tv"), ("int", "action")],
    "onQueryTextSubmit": [("java.lang.String", "query")],
}

#: Names in homage to the apps the paper patched (§5.2).
_APP_NAMES = (
    "fdroid",
    "kontalk",
    "gpslogger",
    "ankidroid",
    "popcorntime",
    "galaxyzoo",
    "yaxim",
    "hackernews",
    "jamendo",
    "bombusmod",
    "owncloud",
    "gtalksms",
    "connectbot",
    "sipdroid",
    "wordpress",
    "devfest",
)


@dataclass
class _Placement:
    spec: RequestSpec
    in_service: bool = False


def _plans() -> list[list[_Placement]]:
    """Request placements for each of the 16 apps."""

    def r(**kw) -> _Placement:
        in_service = kw.pop("in_service", False)
        return _Placement(RequestSpec(**kw), in_service)

    http = dict(library="httpurlconnection")
    toast = dict(with_notification=Notification.TOAST)
    guard = dict(connectivity=Connectivity.GUARDED)

    plans: list[list[_Placement]] = []

    # Apps 1-2 — the connectivity-FP apps: launcher checks connectivity,
    # then starts the requesting activity (2 inter-component requests each
    # + 1 honestly guarded one).
    for _ in range(2):
        plans.append(
            [
                r(**http, connectivity=Connectivity.INTER_COMPONENT, **toast),
                r(**http, connectivity=Connectivity.INTER_COMPONENT, **toast),
                r(**http, **guard, **toast),
            ]
        )

    # App 3 — the connectivity-FN app: five checks that never guard.
    plans.append(
        [r(**http, connectivity=Connectivity.UNGUARDED, **toast) for _ in range(5)]
    )

    # App 4 — the notification-FP app: five requests that broadcast the
    # error; another activity displays it.
    plans.append(
        [
            r(**http, **guard, with_notification=Notification.BROADCAST)
            for _ in range(5)
        ]
    )

    # Apps 5-8 — group A: 20 HttpURLConnection requests, no connectivity
    # check, no timeout, silent failures (the bulk of the correct
    # warnings: 20 conn + 20 timeout + 20 notification).
    for _ in range(4):
        plans.append([r(**http) for _ in range(5)])

    # Apps 9-10 — group B: 10 Apache requests with retry handlers and
    # honest guards; they contribute 10 missed timeouts only.
    for _ in range(2):
        plans.append(
            [
                r(library="apache", with_retry=True, retry_value=2, **guard, **toast)
                for _ in range(5)
            ]
        )

    # App 11 — group C1: Volley background/POST over-retries via defaults
    # (2 service requests + 1 POST), no retry config → 3 missed-retry.
    plans.append(
        [
            r(library="volley", uses_error_types=True, in_service=True, **toast),
            r(library="volley", uses_error_types=True, in_service=True, **toast),
            r(library="volley", uses_error_types=True, http_post=True, **guard, **toast),
        ]
    )

    # App 12 — group C2: 3 user Volley GETs without retry config or
    # connectivity checks.
    plans.append(
        [r(library="volley", uses_error_types=True, **toast) for _ in range(3)]
    )

    # App 13 — group D: 3 Android-Async-HTTP requests without retry config
    # or connectivity checks.
    plans.append([r(library="asynchttp", **toast) for _ in range(3)])

    # App 14 — group E: 3 Basic-HTTP requests without retry config or
    # connectivity checks; their responses are used unchecked (3 of the 5
    # response warnings).
    plans.append([r(library="basichttp", **toast) for _ in range(3)])

    # App 15 — group F + G1: an explicit retries=0 on a user request (the
    # no-retry-for-time-sensitive case) and one OkHttp request.
    plans.append(
        [
            r(
                library="basichttp",
                with_retry=True,
                retry_value=0,
                with_timeout=True,
                with_response_check=True,
                **guard,
                **toast,
            ),
            r(
                library="okhttp",
                with_retry=True,
                retry_value=1,
                with_timeout=True,
                **guard,
                **toast,
            ),
        ]
    )

    # App 16 — group G2: one more OkHttp request, response unchecked.
    plans.append(
        [
            r(
                library="okhttp",
                with_retry=True,
                retry_value=1,
                with_timeout=True,
                **guard,
                **toast,
            )
        ]
    )

    assert len(plans) == 16
    return plans


def build_opensource_corpus() -> list[tuple[APK, AppGroundTruth]]:
    """Build the 16 deterministic open-source-style apps."""
    corpus: list[tuple[APK, AppGroundTruth]] = []
    for name, placements in zip(_APP_NAMES, _plans()):
        package = f"org.opensource.{name}"
        app = AppBuilder(package)
        truth = AppGroundTruth(package)
        has_inter_component = any(
            p.spec.connectivity is Connectivity.INTER_COMPONENT for p in placements
        )
        if has_inter_component:
            _add_launcher_with_check(app)
        if any(p.spec.with_notification is Notification.BROADCAST for p in placements):
            _add_error_display_activity(app)

        activity = app.activity("MainActivity")
        ui_slots = list(_UI_METHODS)
        service_count = 0
        for placement in placements:
            if placement.in_service:
                service_count += 1
                service = app.service(f"SyncService{service_count}")
                body = service.method(
                    "onStartCommand",
                    params=[("android.content.Intent", "intent"), ("int", "flags")],
                    return_type="int",
                )
                record = inject_request(
                    app, body, placement.spec, user_initiated=False, background=True
                )
                body.ret(0)
                service.add(body)
            else:
                if not ui_slots:
                    activity = app.activity(f"Screen{len(truth.requests)}")
                    ui_slots = list(_UI_METHODS)
                method_name = ui_slots.pop(0)
                body = activity.method(method_name, params=_UI_PARAMS[method_name])
                record = inject_request(app, body, placement.spec, user_initiated=True)
                body.ret()
                activity.add(body)
            truth.requests.append(record)
        corpus.append((app.build(), truth))
    return corpus


def _add_launcher_with_check(app: AppBuilder) -> None:
    """The inter-component FP shape: the launcher checks connectivity and
    only then starts the requesting activity.  Static analysis without
    inter-component tracking cannot connect the two."""
    launcher = app.activity("LauncherActivity")
    b = launcher.method("onCreate", params=[("android.os.Bundle", "saved")])
    cm = b.new("android.net.ConnectivityManager", "cm")
    ni = b.call(cm, "getActiveNetworkInfo", ret="ni", cls="android.net.ConnectivityManager")
    with b.if_then("!=", ni, None):
        # An explicit Intent: the ICC extension resolves its target.
        intent = b.new(
            "android.content.Intent", "intent",
            args=[f"{app.package}.MainActivity"],
        )
        b.static_call("android.content.Context", "startActivity", intent, ret=None)
    b.ret()
    launcher.add(b)


def _add_error_display_activity(app: AppBuilder) -> None:
    """The notification-FP shape: a dedicated activity receives the error
    broadcast and shows the message."""
    display = app.activity("ErrorDisplayActivity")
    b = display.method(
        "onReceive",
        params=[("android.content.Context", "ctx"), ("android.content.Intent", "intent")],
    )
    toast = b.static_call(
        "android.widget.Toast", "makeText", "ctx", "Network error", 0,
        ret="t", return_type="android.widget.Toast",
    )
    b.call(toast, "show", cls="android.widget.Toast")
    b.ret()
    display.add(b)
