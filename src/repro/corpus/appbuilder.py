"""App-level builder: assembles whole synthetic APKs.

Wraps :class:`~repro.ir.builder.ClassBuilder` with manifest registration
and houses the auxiliary classes the snippet emitters create (listener
implementations, AsyncTasks, helper methods).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..app.apk import APK
from ..app.components import ComponentKind
from ..app.manifest import Manifest
from ..ir.builder import ClassBuilder, MethodBuilder


class AppBuilder:
    """Accumulates classes and manifest entries, then builds an APK."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.manifest = Manifest(
            package, permissions=["android.permission.INTERNET"]
        )
        self._class_builders: dict[str, ClassBuilder] = {}
        self._counter = 0

    def fresh_name(self, hint: str) -> str:
        self._counter += 1
        return f"{self.package}.{hint}{self._counter}"

    def new_class(
        self,
        name: str,
        superclass: str = "java.lang.Object",
        interfaces: Sequence[str] = (),
        component: Optional[ComponentKind] = None,
    ) -> ClassBuilder:
        if not name.startswith(self.package):
            name = f"{self.package}.{name}"
        builder = ClassBuilder(name, superclass, interfaces)
        if name in self._class_builders:
            raise ValueError(f"duplicate class {name}")
        self._class_builders[name] = builder
        if component is not None:
            self.manifest.declare(component, name)
        return builder

    def activity(self, name: str) -> ClassBuilder:
        return self.new_class(
            name, "android.app.Activity", component=ComponentKind.ACTIVITY
        )

    def service(self, name: str) -> ClassBuilder:
        return self.new_class(
            name, "android.app.Service", component=ComponentKind.SERVICE
        )

    def async_task(self, name: str) -> ClassBuilder:
        return self.new_class(name, "android.os.AsyncTask")

    def listener(self, name: str, interface: str) -> ClassBuilder:
        return self.new_class(name, interfaces=[interface])

    def get_class_builder(self, name: str) -> ClassBuilder:
        return self._class_builders[name]

    def build(self) -> APK:
        apk = APK(self.manifest, [cb.build() for cb in self._class_builders.values()])
        apk.validate()
        return apk
