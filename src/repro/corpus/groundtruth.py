"""Ground-truth ledger and accuracy accounting (paper §5.3, Table 9).

Every generated request records the *semantic* defects present (what a
human code reviewer would confirm).  Comparing checker findings against
the ledger yields per-kind confusion counts: correct warnings, false
positives (warned, no real defect — the paper's inter-component shapes),
and false negatives (real defect, no warning — the paper's
path-insensitive connectivity shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.checker import ScanResult
from ..core.defects import DefectKind
from .snippets import InjectedRequest

#: Defect kinds aggregated into Table 9's "Over retries" row.
OVER_RETRY_KINDS = frozenset(
    {
        DefectKind.NO_RETRY_TIME_SENSITIVE,
        DefectKind.OVER_RETRY_SERVICE,
        DefectKind.OVER_RETRY_POST,
    }
)

#: Table 9 row labels, in paper order, and the kinds each aggregates.
TABLE9_ROWS: tuple[tuple[str, frozenset[DefectKind]], ...] = (
    ("Missed conn. checks", frozenset({DefectKind.MISSED_CONNECTIVITY_CHECK})),
    ("Missed timeout APIs", frozenset({DefectKind.MISSED_TIMEOUT})),
    ("Missed retry APIs", frozenset({DefectKind.MISSED_RETRY})),
    ("Over retries", OVER_RETRY_KINDS),
    ("Missed failure notifications", frozenset({DefectKind.MISSED_NOTIFICATION})),
    ("Missed response checks", frozenset({DefectKind.MISSED_RESPONSE_CHECK})),
)


@dataclass
class AppGroundTruth:
    """Injected requests (and their expected defects) for one app."""

    package: str
    requests: list[InjectedRequest] = field(default_factory=list)

    def expected_counts(self) -> dict[DefectKind, int]:
        counts: dict[DefectKind, int] = {}
        for request in self.requests:
            for kind in request.expected:
                counts[kind] = counts.get(kind, 0) + 1
        return counts


@dataclass
class Confusion:
    """Per-kind-group confusion counts."""

    correct: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def reported(self) -> int:
        return self.correct + self.false_positives

    @property
    def accuracy_denominator(self) -> int:
        return self.correct + self.false_positives

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(
            self.correct + other.correct,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def confusion_for_app(
    truth: AppGroundTruth, result: ScanResult, kinds: frozenset[DefectKind]
) -> Confusion:
    """Compare findings against ground truth for one defect-kind group.

    Counts are per (request-host-method, kind): a finding is *correct* when
    the ledger expects that kind in that method, a *false positive*
    otherwise; an expected defect with no matching finding is a *false
    negative*.  Method granularity matches how the paper verified warnings
    against source code.
    """
    expected: set[tuple[str, str, DefectKind]] = set()
    for request in truth.requests:
        for kind in request.expected:
            if kind in kinds:
                expected.add((request.host_class, request.host_method, kind))

    reported: set[tuple[str, str, DefectKind]] = set()
    for finding in result.findings:
        if finding.kind not in kinds:
            continue
        if finding.request is not None:
            key = (
                finding.request.method.class_name,
                finding.request.method.name,
                finding.kind,
            )
        else:
            key = (finding.method_key[0], finding.method_key[1], finding.kind)
        reported.add(key)
    # Findings carry the request they concern, and the ledger records the
    # request's injection site, so exact (class, method, kind) matching is
    # sound: the corpus injects at most one request per method.
    correct = len(reported & expected)
    false_positive = len(reported - expected)
    false_negative = len(expected - reported)
    return Confusion(correct, false_positive, false_negative)


def table9_confusions(
    truths: list[AppGroundTruth], results: list[ScanResult]
) -> dict[str, Confusion]:
    """Aggregate Table 9 over a corpus (apps matched by package name)."""
    by_package = {r.package: r for r in results}
    table: dict[str, Confusion] = {label: Confusion() for label, _ in TABLE9_ROWS}
    for truth in truths:
        result = by_package.get(truth.package)
        if result is None:
            continue
        for label, kinds in TABLE9_ROWS:
            table[label] = table[label] + confusion_for_app(truth, result, kinds)
    return table


def overall_accuracy(table: dict[str, Confusion]) -> float:
    """Correct warnings / all warnings (the paper's 94 %+ metric)."""
    correct = sum(c.correct for c in table.values())
    reported = sum(c.reported for c in table.values())
    return correct / reported if reported else 1.0


# ---------------------------------------------------------------------------
# JSON ledger (``nchecker corpus`` writes groundtruth.json next to the
# .apkt files, so external tools can score their own scans)
# ---------------------------------------------------------------------------


def ledger_entry(truth: AppGroundTruth) -> dict:
    """JSON-safe view of one app's injected requests."""
    return {
        "package": truth.package,
        "requests": [
            {
                "host_class": req.host_class,
                "host_method": req.host_method,
                "library": req.spec.library,
                "expected": sorted(kind.value for kind in req.expected),
                "spec": {
                    "http_post": req.spec.http_post,
                    "connectivity": req.spec.connectivity.value,
                    "with_timeout": req.spec.with_timeout,
                    "timeout_ms": req.spec.timeout_ms,
                    "with_retry": req.spec.with_retry,
                    "retry_value": req.spec.retry_value,
                    "notification": req.spec.with_notification.value,
                    "with_response_check": req.spec.with_response_check,
                    "uses_error_types": req.spec.uses_error_types,
                    "retry_loop": req.spec.retry_loop.value,
                    "backoff": req.spec.backoff.value,
                    "use_async": req.spec.use_async,
                    "url": req.spec.url,
                },
            }
            for req in truth.requests
        ],
    }


def dumps_ledger(truths: list[AppGroundTruth]) -> str:
    """The ``groundtruth.json`` ledger for a generated corpus."""
    import json

    return json.dumps([ledger_entry(truth) for truth in truths], indent=2) + "\n"
