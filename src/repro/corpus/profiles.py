"""Statistical profiles for the synthetic evaluation corpus.

The paper's evaluation scanned 285 apps crawled from Google Play (269
closed-source + 16 open-source, Table 7).  We cannot redistribute those
binaries; instead the corpus generator synthesises apps whose *defect
mix* follows the rates the paper measured (§5.2), so that re-running
NChecker over the synthetic corpus reproduces the shape of Tables 6–8 and
Figures 8–9.  Every rate below cites the paper sentence it encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LibraryMix:
    """Table 7: evaluated apps per library (apps may use several)."""

    n_apps: int = 285
    native: int = 270  # HttpURLConnection + Apache HttpClient
    volley: int = 78
    asynchttp: int = 25
    basichttp: int = 18
    okhttp: int = 11

    def probabilities(self) -> dict[str, float]:
        return {
            "native": self.native / self.n_apps,
            "volley": self.volley / self.n_apps,
            "asynchttp": self.asynchttp / self.n_apps,
            "basichttp": self.basichttp / self.n_apps,
            "okhttp": self.okhttp / self.n_apps,
        }


@dataclass(frozen=True)
class DefectRates:
    """Per-app style probabilities, each tied to a §5.2 measurement."""

    # §5.2.1: "43% of apps never check network connectivity."
    never_connectivity: float = 0.43
    # Fig 8: of the partially-checking apps, 62 % miss the check in over
    # half of their requests.  The Beta(α, β) over the per-app miss ratio
    # is skewed high because every partially-checking app has one forced
    # guarded request (see the generator), which dilutes the observed
    # ratio on small apps.
    conn_miss_beta: tuple[float, float] = (2.1, 0.75)
    # §5.2.1: "49% of apps never set timeout APIs"; Fig 8: 58 % of the
    # rest miss timeouts in over half of requests.
    never_timeout: float = 0.49
    timeout_miss_beta: tuple[float, float] = (2.0, 0.72)
    # §5.2.1: "70% of apps never set retry APIs" (among retry-lib users);
    # "10% of apps have customized retry logic."
    never_retry: float = 0.72
    custom_retry_logic: float = 0.10
    # Of custom retry loops, how many lack backoff (Fig 2's shape was
    # common enough to headline the paper's motivation).
    aggressive_loop: float = 0.5
    # §5.2.3: "57% of apps do not show any notifications for failures in
    # any user-initiated network requests"; Fig 9 CDF for the rest.
    never_notification: float = 0.57
    notification_miss_beta: tuple[float, float] = (1.2, 1.1)
    # §5.2.3: 30 % of requests with explicit error callbacks notify vs
    # 12 % without → when an app does notify, prefer the explicit path.
    notify_via_handler: float = 0.25
    # Bias: libraries with explicit error callbacks make notification code
    # natural to write (§5.2.3's 30 % vs 12 % split).
    explicit_callback_notify_boost: float = 0.30
    blocking_notify_drop: float = 0.45
    # §5.2.3: "93% of apps do not check the error types."
    checks_error_types: float = 0.07
    # §5.2.4: "75% of total network responses miss validity checks" —
    # modelled as a quarter of apps validating every response.
    app_checks_responses: float = 0.25
    # Table 8: 8 % of retry-lib apps disable retries for user requests.
    explicit_zero_retries: float = 0.08
    # Structure knobs (not directly measured; tuned so Table 8's emergent
    # service/POST over-retry rates land in the paper's range).
    app_has_service: float = 0.34
    request_in_service: float = 0.35
    request_is_post: float = 0.085
    # Developers who explicitly configure retries on a POST are rare; this
    # keeps Table 8's "98 % of POST over-retries are defaults" emergent.
    explicit_retry_on_post: float = 0.05
    requests_min: int = 2
    requests_max: int = 8


@dataclass(frozen=True)
class CorpusProfile:
    """Everything the generator needs to synthesise one corpus."""

    mix: LibraryMix = LibraryMix()
    rates: DefectRates = DefectRates()
    seed: int = 20160418  # EuroSys'16 opening day

    def scaled(self, n_apps: int) -> "CorpusProfile":
        """A proportionally smaller corpus (for fast tests)."""
        factor = n_apps / self.mix.n_apps
        mix = LibraryMix(
            n_apps=n_apps,
            native=round(self.mix.native * factor),
            volley=round(self.mix.volley * factor),
            asynchttp=round(self.mix.asynchttp * factor),
            basichttp=round(self.mix.basichttp * factor),
            okhttp=round(self.mix.okhttp * factor),
        )
        return CorpusProfile(mix=mix, rates=self.rates, seed=self.seed)


#: The paper's evaluation corpus profile.
PAPER_PROFILE = CorpusProfile()
