"""Seeded synthetic-corpus generation (the stand-in for the paper's 285
Play-Store apps).

``CorpusGenerator`` draws per-app styles (does this app ever check
connectivity? set timeouts? notify users?) and per-request specifics from
the rates in :mod:`repro.corpus.profiles`, then assembles complete apps —
manifests, activities, services, AsyncTasks, listener classes — via the
snippet emitters.  Every app comes with its ground-truth ledger.

Generation is deterministic per (profile.seed, app index), so the
benchmarks print identical tables run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..app.apk import APK
from ..ir.builder import MethodBuilder
from ..obs import metrics as obs_metrics
from ..obs import span
from .appbuilder import AppBuilder
from .groundtruth import AppGroundTruth
from .profiles import CorpusProfile
from .snippets import (
    Backoff,
    Connectivity,
    Notification,
    RequestSpec,
    RetryLoopShape,
    inject_request,
)

#: UI callbacks to cycle through, one request per method.
_UI_METHODS = (
    "onClick",
    "onLongClick",
    "onItemClick",
    "onMenuItemClick",
    "onOptionsItemSelected",
    "onRefresh",
    "onEditorAction",
    "onQueryTextSubmit",
)
_UI_PARAMS: dict[str, list[tuple[str, str]]] = {
    "onClick": [("android.view.View", "v")],
    "onLongClick": [("android.view.View", "v")],
    "onItemClick": [("android.widget.AdapterView", "parent"), ("int", "position")],
    "onMenuItemClick": [("android.view.MenuItem", "item")],
    "onOptionsItemSelected": [("android.view.MenuItem", "item")],
    "onRefresh": [],
    "onEditorAction": [("android.widget.TextView", "tv"), ("int", "actionId")],
    "onQueryTextSubmit": [("java.lang.String", "query")],
}

#: Blocking libraries (eligible for AsyncTask wrapping and retry loops).
_BLOCKING_LIBS = frozenset({"httpurlconnection", "apache", "basichttp", "okhttp"})


@dataclass
class AppStyle:
    """Per-app behavioural draw (the source of per-app CDF structure)."""

    libraries: list[str]
    never_connectivity: bool
    conn_miss_ratio: float
    never_timeout: bool
    timeout_miss_ratio: float
    never_retry: bool
    custom_retry: bool
    aggressive_loops: bool
    never_notification: bool
    notification_miss_ratio: float
    checks_error_types: bool
    explicit_zero_retries: bool
    checks_responses: bool
    has_service: bool
    n_requests: int


class CorpusGenerator:
    """Generates (APK, ground truth) pairs for one profile."""

    def __init__(self, profile: CorpusProfile) -> None:
        self.profile = profile

    # -- public API -----------------------------------------------------------

    def generate(self) -> list[tuple[APK, AppGroundTruth]]:
        return list(self.iter_apps())

    def iter_apps(self) -> Iterator[tuple[APK, AppGroundTruth]]:
        for index in range(self.profile.mix.n_apps):
            yield self.generate_app(index)

    def generate_app(self, index: int) -> tuple[APK, AppGroundTruth]:
        registry = obs_metrics()
        with span("corpus:generate-app", index=index), registry.timer(
            "corpus.generate_ms"
        ):
            rng = random.Random(f"{self.profile.seed}:{index}")
            style = self._draw_style(rng)
            package = f"com.corpus.app{index:04d}"
            app = AppBuilder(package)
            truth = AppGroundTruth(package)
            builder_state = _AppAssembler(app, style, rng)
            forcing = _ForcingState()
            for i in range(style.n_requests):
                spec, in_service = self._draw_spec(rng, style, i, forcing)
                record = builder_state.place_request(spec, in_service)
                truth.requests.append(record)
            builder_state.finish()
            registry.inc("corpus.apps_generated")
            return app.build(), truth

    # -- draws ------------------------------------------------------------------

    def _draw_style(self, rng: random.Random) -> AppStyle:
        mix = self.profile.mix.probabilities()
        rates = self.profile.rates
        libraries: list[str] = []
        if rng.random() < mix["native"]:
            libraries.append(rng.choice(["httpurlconnection", "apache"]))
        for key in ("volley", "asynchttp", "basichttp", "okhttp"):
            if rng.random() < mix[key]:
                libraries.append(key)
        if not libraries:
            libraries.append(rng.choice(["httpurlconnection", "apache"]))
        never_retry = rng.random() < rates.never_retry
        return AppStyle(
            libraries=libraries,
            never_connectivity=rng.random() < rates.never_connectivity,
            conn_miss_ratio=rng.betavariate(*rates.conn_miss_beta),
            never_timeout=rng.random() < rates.never_timeout,
            timeout_miss_ratio=rng.betavariate(*rates.timeout_miss_beta),
            never_retry=never_retry,
            custom_retry=rng.random() < rates.custom_retry_logic,
            aggressive_loops=rng.random() < rates.aggressive_loop,
            never_notification=rng.random() < rates.never_notification,
            notification_miss_ratio=rng.betavariate(*rates.notification_miss_beta),
            checks_error_types=rng.random() < rates.checks_error_types,
            # Apps that explicitly zero retries are a subset of the apps
            # that touch retry APIs at all, so condition on ¬never_retry
            # and rescale to keep the unconditional rate at the Table 8
            # target.
            explicit_zero_retries=(
                not never_retry
                and rng.random()
                < rates.explicit_zero_retries / max(1e-9, 1 - rates.never_retry)
            ),
            checks_responses=rng.random() < rates.app_checks_responses,
            has_service=rng.random() < rates.app_has_service,
            n_requests=rng.randint(rates.requests_min, rates.requests_max),
        )

    def _draw_spec(
        self,
        rng: random.Random,
        style: AppStyle,
        index: int,
        forcing: "_ForcingState",
    ) -> tuple[RequestSpec, bool]:
        """Draw one request.

        The "forcing" rules anchor the app-level style flags: an app that
        is *not* in the never-checks-connectivity group must contain at
        least one guarded request (otherwise small apps with a high miss
        ratio would land in the "never" bucket by chance and inflate the
        never-rates past the drawn probabilities) — likewise for timeouts
        and notifications.  Each app also uses every library it declares
        at least once (Table 7's per-library app counts depend on it).
        """
        rates = self.profile.rates
        if index < len(style.libraries):
            library = style.libraries[index]
        else:
            library = rng.choice(style.libraries)
        in_service = style.has_service and rng.random() < rates.request_in_service

        if style.never_connectivity:
            connectivity = Connectivity.NONE
        elif not forcing.conn_guarded:
            connectivity = Connectivity.GUARDED
            forcing.conn_guarded = True
        elif rng.random() < style.conn_miss_ratio:
            connectivity = Connectivity.NONE
        else:
            connectivity = rng.choice([Connectivity.GUARDED, Connectivity.HELPER])

        if style.never_timeout:
            with_timeout = False
        elif not forcing.timeout_set:
            with_timeout = True
            forcing.timeout_set = True
        else:
            with_timeout = rng.random() >= style.timeout_miss_ratio

        http_post = rng.random() < rates.request_is_post

        retry_loop = RetryLoopShape.NONE
        backoff = Backoff.EXPONENTIAL
        with_retry = False
        retry_value = rng.choice([1, 2, 3])
        if style.custom_retry and library in _BLOCKING_LIBS and rng.random() < 0.5:
            retry_loop = rng.choice(
                [
                    RetryLoopShape.UNCONDITIONAL_EXIT,
                    RetryLoopShape.CATCH_DEPENDENT,
                    RetryLoopShape.CALLEE_CATCH,
                ]
            )
            backoff = Backoff.NONE if style.aggressive_loops else Backoff.EXPONENTIAL
        elif not style.never_retry:
            with_retry = rng.random() < 0.8
            if http_post and with_retry:
                with_retry = rng.random() < rates.explicit_retry_on_post
            if in_service and with_retry:
                # Background requests rarely get explicit retry policies;
                # the Table 8 "default behavior" share depends on it.
                with_retry = rng.random() < 0.8
        lib_has_retry = _LIB_HAS_RETRY[library]
        if (
            style.explicit_zero_retries
            and not forcing.zero_retry_placed
            and not in_service
            and lib_has_retry
            and retry_loop is RetryLoopShape.NONE
        ):
            with_retry = True
            retry_value = 0
            forcing.zero_retry_placed = True

        explicit_callback_lib = library in ("volley", "asynchttp")
        notification_forced = False
        if style.never_notification:
            notification = rng.choice([Notification.NONE, Notification.LOG])
        elif not in_service and not forcing.notified:
            notification = Notification.TOAST
            forcing.notified = True
            notification_forced = True
        elif rng.random() < style.notification_miss_ratio:
            notification = rng.choice([Notification.NONE, Notification.LOG])
        else:
            handler = rng.random() < rates.notify_via_handler
            notification = Notification.HANDLER if handler else Notification.TOAST
        # §5.2.3: explicit error callbacks attract notification code while
        # blocking catch-blocks lose it.  The forced per-app notification
        # is exempt (it anchors the app's "ever notifies" style flag).
        if not notification_forced:
            if notification in (Notification.NONE, Notification.LOG):
                if (
                    explicit_callback_lib
                    and not style.never_notification
                    and rng.random() < rates.explicit_callback_notify_boost
                ):
                    notification = Notification.TOAST
            elif (
                not explicit_callback_lib
                and rng.random() < rates.blocking_notify_drop
            ):
                notification = Notification.LOG

        use_async = (
            library == "okhttp"
            and retry_loop is RetryLoopShape.NONE
            and rng.random() < 0.4
        )

        spec = RequestSpec(
            library=library,
            http_post=http_post,
            use_async=use_async,
            connectivity=connectivity,
            with_timeout=with_timeout,
            timeout_ms=rng.choice([5000, 10000, 15000, 30000]),
            with_retry=with_retry,
            retry_value=retry_value,
            with_notification=notification,
            with_response_check=style.checks_responses,
            uses_error_types=style.checks_error_types,
            retry_loop=retry_loop,
            backoff=backoff,
            url=f"http://api.example.com/v{rng.randint(1, 4)}/data",
        )
        return spec, in_service


#: Which libraries expose retry APIs (duplicated from the library models to
#: keep the generator free of a checker import cycle; asserted in tests).
_LIB_HAS_RETRY = {
    "httpurlconnection": False,
    "apache": True,
    "volley": True,
    "okhttp": True,
    "asynchttp": True,
    "basichttp": True,
}


@dataclass
class _ForcingState:
    """Tracks per-app forcing obligations across request draws."""

    conn_guarded: bool = False
    timeout_set: bool = False
    notified: bool = False
    zero_retry_placed: bool = False


class _AppAssembler:
    """Places requests into activities/services/AsyncTasks for one app."""

    def __init__(self, app: AppBuilder, style: AppStyle, rng: random.Random) -> None:
        self.app = app
        self.style = style
        self.rng = rng
        self._activities: list = []
        self._service = None
        self._open_methods: list[tuple[MethodBuilder, object]] = []
        self._activity_slots: list[str] = []
        self._service_slot = 0
        self._task_count = 0
        self._helper_cls = None
        self._helper_count = 0

    def _next_activity_method(self) -> MethodBuilder:
        if not self._activity_slots:
            index = len(self._activities)
            activity = self.app.activity(f"Activity{index}")
            self._activities.append(activity)
            self._activity_slots = list(_UI_METHODS)
        name = self._activity_slots.pop(0)
        activity = self._activities[-1]
        body = activity.method(name, params=_UI_PARAMS[name])
        self._open_methods.append((body, activity))
        return body

    def _next_service_method(self) -> MethodBuilder:
        # One service per background request: keeps each request's guard
        # analysis independent (a check in a shared entry method would
        # shadow sibling requests through the shared call chain).
        self._service_slot += 1
        service = self.app.service(f"SyncService{self._service_slot}")
        body = service.method(
            "onStartCommand",
            params=[("android.content.Intent", "intent"), ("int", "flags")],
            return_type="int",
        )
        self._open_methods.append((body, service))
        return body

    def _place_via_helper(self, caller: MethodBuilder, spec: RequestSpec, user: bool):
        """Emit the request into an ApiClient helper method and call it
        from ``caller`` — the service-layer indirection real apps have,
        exercising the interprocedural side of every analysis."""
        if self._helper_cls is None:
            self._helper_cls = self.app.new_class("ApiClient")
        self._helper_count += 1
        helper_body = self._helper_cls.method(f"request{self._helper_count}")
        record = inject_request(
            self.app, helper_body, spec, user_initiated=user, background=not user
        )
        helper_body.ret()
        self._helper_cls.add(helper_body)
        api = caller.new(
            self._helper_cls.name, f"api{self._helper_count}"
        )
        caller.call(api, f"request{self._helper_count}")
        return record

    def place_request(self, spec: RequestSpec, in_service: bool):
        use_async_task = (
            not in_service
            and spec.library in _BLOCKING_LIBS
            and spec.retry_loop is RetryLoopShape.NONE
            and self.rng.random() < 0.4
        )
        use_helper = (
            spec.retry_loop is RetryLoopShape.NONE
            and not use_async_task
            and self.rng.random() < 0.25
        )
        if in_service:
            body = self._next_service_method()
            if use_helper:
                record = self._place_via_helper(body, spec, user=False)
            else:
                record = inject_request(
                    self.app, body, spec, user_initiated=False, background=True
                )
        elif use_helper:
            body = self._next_activity_method()
            record = self._place_via_helper(body, spec, user=True)
        elif use_async_task:
            body = self._next_activity_method()
            self._task_count += 1
            task_name = f"FetchTask{self._task_count}"
            task = self.app.async_task(task_name)
            task_body = task.method("doInBackground")
            record = inject_request(
                self.app, task_body, spec, user_initiated=True
            )
            task_body.ret()
            task.add(task_body)
            post = task.method("onPostExecute", params=[("java.lang.String", "r")])
            post.ret()
            task.add(post)
            instance = body.new(f"{self.app.package}.{task_name}", f"task{self._task_count}")
            body.call(instance, "execute")
        else:
            body = self._next_activity_method()
            record = inject_request(self.app, body, spec, user_initiated=True)
        return record

    def finish(self) -> None:
        """Close all open method bodies."""
        for body, owner in self._open_methods:
            if body.sig.return_type == "int":
                body.ret(0)
            else:
                body.ret()
            owner.add(body)
        if not self._activities:
            # Every app has a main activity even if all requests are
            # background ones.
            activity = self.app.activity("MainActivity")
            body = activity.method("onCreate", params=[("android.os.Bundle", "b")])
            body.ret()
            activity.add(body)
