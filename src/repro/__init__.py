"""NChecker reproduction (EuroSys'16): detecting network programming
defects in Android-style app binaries by static analysis.

Quickstart::

    from repro import NChecker, load_apk

    result = NChecker().scan(load_apk("app.apkt"))
    for report in result.reports():
        print(report.render())

Packages:

* :mod:`repro.core` — the detector (the paper's contribution);
* :mod:`repro.ir`, :mod:`repro.cfg`, :mod:`repro.dataflow`,
  :mod:`repro.callgraph` — the program-analysis substrate;
* :mod:`repro.app`, :mod:`repro.libmodels` — the Android and
  network-library models;
* :mod:`repro.corpus` — synthetic evaluation corpus + ground truth;
* :mod:`repro.netsim` — network simulator and IR runtime;
* :mod:`repro.userstudy`, :mod:`repro.eval` — the paper's evaluation.
"""

from .app import APK, Manifest, dumps_apk, load_apk, loads_apk, save_apk
from .core import (
    DefectKind,
    Finding,
    NChecker,
    NCheckerOptions,
    ScanResult,
    WarningReport,
    build_report,
)

__version__ = "1.0.0"

__all__ = [
    "APK",
    "DefectKind",
    "Finding",
    "Manifest",
    "NChecker",
    "NCheckerOptions",
    "ScanResult",
    "WarningReport",
    "build_report",
    "dumps_apk",
    "load_apk",
    "loads_apk",
    "save_apk",
    "__version__",
]
