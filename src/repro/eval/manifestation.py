"""Defect-manifestation study: do detected NPDs actually hurt users?

The paper classifies NPD impact from bug reports (Fig 4).  This module
closes the loop empirically, beyond what the paper could do with static
binaries: every corpus app is *executed* against disrupted networks and
its user-visible symptoms recorded, then cross-tabulated against the
static findings.  The result validates the detector end-to-end: apps
flagged for a defect class exhibit its symptom far more often than apps
that scan clean for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..app.apk import APK
from ..app.components import UI_CALLBACK_METHODS
from ..core.checker import NChecker, ScanResult
from ..core.defects import DefectKind
from ..netsim.energy import energy_per_hour_mj
from ..netsim.link import LinkProfile, OFFLINE
from ..netsim.runtime import Runtime

#: The degraded-but-connected condition (read timeouts, invalid responses).
POOR_3G = LinkProfile("poor-3G", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)


@dataclass
class AppObservation:
    """Symptoms one app exhibited across its entry points and links."""

    package: str
    findings: set[DefectKind] = field(default_factory=set)
    crashed: bool = False
    silent_failure: bool = False
    battery_drain: bool = False
    long_hang: bool = False
    energy_mj_per_hour: float = 0.0

    def symptom_for(self, kind: DefectKind) -> bool:
        """The Fig 4 impact mapping: which symptom evidences which kind."""
        if kind is DefectKind.MISSED_RESPONSE_CHECK:
            return self.crashed
        if kind in (DefectKind.MISSED_NOTIFICATION, DefectKind.MISSED_ERROR_TYPE_CHECK):
            return self.silent_failure
        if kind is DefectKind.AGGRESSIVE_RETRY_LOOP:
            return self.battery_drain
        if kind is DefectKind.MISSED_TIMEOUT:
            return self.long_hang
        return False


@dataclass
class ManifestationRow:
    kind: DefectKind
    symptom: str
    flagged_apps: int
    flagged_symptomatic: int
    clean_apps: int
    clean_symptomatic: int

    @property
    def flagged_rate(self) -> float:
        return self.flagged_symptomatic / self.flagged_apps if self.flagged_apps else 0.0

    @property
    def clean_rate(self) -> float:
        return self.clean_symptomatic / self.clean_apps if self.clean_apps else 0.0


_STUDIED = (
    (DefectKind.MISSED_RESPONSE_CHECK, "crash"),
    (DefectKind.MISSED_NOTIFICATION, "silent failure"),
    (DefectKind.AGGRESSIVE_RETRY_LOOP, "battery drain"),
    (DefectKind.MISSED_TIMEOUT, "long hang"),
)


def observe_app(
    apk: APK,
    result: ScanResult,
    links: tuple[LinkProfile, ...] = (POOR_3G, OFFLINE),
    seed: int = 0,
    hang_threshold_ms: float = 30_000.0,
) -> AppObservation:
    """Run every UI entry point of ``apk`` under each link and fold the
    symptoms together."""
    observation = AppObservation(apk.package, {f.kind for f in result.findings})
    entries = [
        (cls.name, method.name)
        for cls in apk.classes()
        for method in cls.methods()
        if method.name in UI_CALLBACK_METHODS or method.name == "onStartCommand"
    ]
    worst_energy = 0.0
    for link in links:
        for cls_name, method_name in entries:
            runtime = Runtime(
                apk,
                link,
                seed=seed,
                statement_budget=5_000,
                # Degraded-but-connected links deliver HTTP errors too.
                invalid_response_rate=0.5 if link.connected else 0.0,
            )
            report = runtime.run_entry(cls_name, method_name)
            observation.crashed |= report.crashed
            observation.silent_failure |= report.silent_failure
            observation.battery_drain |= report.battery_drain
            if report.network_failures or report.budget_exhausted:
                observation.long_hang |= report.sim_time_ms >= hang_threshold_ms
            if report.network_attempts:
                worst_energy = max(worst_energy, energy_per_hour_mj(report))
    observation.energy_mj_per_hour = worst_energy
    return observation


def manifestation_study(
    pairs: list[tuple[APK, object]],
    checker: Optional[NChecker] = None,
    seed: int = 0,
) -> list[ManifestationRow]:
    """Scan + execute a corpus sample and cross-tabulate kind × symptom."""
    checker = checker or NChecker()
    observations = []
    for apk, _truth in pairs:
        result = checker.scan(apk)
        observations.append(observe_app(apk, result, seed=seed))

    rows: list[ManifestationRow] = []
    for kind, symptom in _STUDIED:
        flagged = [o for o in observations if kind in o.findings]
        clean = [o for o in observations if kind not in o.findings]
        rows.append(
            ManifestationRow(
                kind,
                symptom,
                len(flagged),
                sum(o.symptom_for(kind) for o in flagged),
                len(clean),
                sum(o.symptom_for(kind) for o in clean),
            )
        )
    return rows


def render_manifestation(rows: list[ManifestationRow]) -> str:
    from .tables import render_table

    table = [["Defect kind", "Symptom", "Flagged apps", "Symptomatic", "Clean apps", "Symptomatic"]]
    for row in rows:
        table.append(
            [
                row.kind.value,
                row.symptom,
                row.flagged_apps,
                f"{row.flagged_symptomatic} ({row.flagged_rate:.0%})",
                row.clean_apps,
                f"{row.clean_symptomatic} ({row.clean_rate:.0%})",
            ]
        )
    return render_table(table, "Defect manifestation under disrupted networks:")
