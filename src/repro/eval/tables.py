"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from typing import Sequence


def render_table(rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Align ``rows`` (first row is the header) into a text table."""
    cells = [[str(c) for c in row] for row in rows]
    if not cells:
        return title
    widths = [0] * max(len(row) for row in cells)
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header, *body = cells
    lines.append("  ".join(c.ljust(w) for c, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(values: Sequence[float], n_bins: int = 10) -> str:
    """A terminal sparkline of a CDF over [0, 1] ratios."""
    if not values:
        return "(empty)"
    sorted_values = sorted(values)
    n = len(sorted_values)
    lines = []
    for i in range(1, n_bins + 1):
        threshold = i / n_bins
        fraction = sum(1 for v in sorted_values if v <= threshold) / n
        bar = "#" * round(fraction * 40)
        lines.append(f"  x<={threshold:.1f}  {fraction:5.2f} {bar}")
    return "\n".join(lines)


def percent(numerator: int, denominator: int) -> str:
    if denominator == 0:
        return "n/a"
    return f"{round(100 * numerator / denominator)}%"
