"""Corpus-level aggregation: Tables 6-8 and the Fig 8/9 CDFs.

All functions take the list of :class:`~repro.core.checker.ScanResult`
produced by scanning a corpus and compute exactly the quantities the
paper's evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.checker import ScanResult
from ..core.defects import DefectKind
from ..core.requests import RequestLocation

#: Table 6 "over retries" aggregates the three improper-parameter kinds.
_OVER_RETRY = (
    DefectKind.NO_RETRY_TIME_SENSITIVE,
    DefectKind.OVER_RETRY_SERVICE,
    DefectKind.OVER_RETRY_POST,
)


@dataclass
class AppRequestFlags:
    """Per-app request-level outcome flags (the CDF raw material)."""

    package: str
    total_requests: int = 0
    missing_conn: int = 0
    retry_lib_requests: int = 0
    missing_retry: int = 0
    #: Requests on retry-capable libraries with no retry *API* configured
    #: (the paper's literal "never set retry APIs" — hand-rolled retry
    #: loops do not count as using the API).
    missing_retry_config: int = 0
    missing_timeout: int = 0
    user_requests: int = 0
    user_missing_notification: int = 0
    resp_lib_requests: int = 0
    missing_response_check: int = 0
    has_over_retry: bool = False
    over_retry_kinds: set = field(default_factory=set)
    default_caused_over_retries: int = 0
    over_retries: int = 0
    custom_retry_loops: int = 0

    @property
    def never_checks_connectivity(self) -> bool:
        return self.total_requests > 0 and self.missing_conn == self.total_requests

    @property
    def never_sets_timeout(self) -> bool:
        return self.total_requests > 0 and self.missing_timeout == self.total_requests

    @property
    def never_sets_retry(self) -> bool:
        return (
            self.retry_lib_requests > 0
            and self.missing_retry_config == self.retry_lib_requests
        )

    @property
    def never_notifies(self) -> bool:
        return (
            self.user_requests > 0
            and self.user_missing_notification == self.user_requests
        )

    @property
    def conn_miss_ratio(self) -> float:
        return self.missing_conn / self.total_requests if self.total_requests else 0.0

    @property
    def timeout_miss_ratio(self) -> float:
        return (
            self.missing_timeout / self.total_requests if self.total_requests else 0.0
        )

    @property
    def notification_miss_ratio(self) -> float:
        return (
            self.user_missing_notification / self.user_requests
            if self.user_requests
            else 0.0
        )


def app_flags(result: ScanResult) -> AppRequestFlags:
    """Fold one scan into per-request outcome flags."""
    flags = AppRequestFlags(result.package)
    findings_by_request: dict[RequestLocation, set[DefectKind]] = {}
    for finding in result.findings:
        if finding.request is not None:
            findings_by_request.setdefault(finding.request.loc, set()).add(
                finding.kind
            )
    for request in result.requests:
        kinds = findings_by_request.get(request.loc, set())
        flags.total_requests += 1
        if DefectKind.MISSED_CONNECTIVITY_CHECK in kinds:
            flags.missing_conn += 1
        if DefectKind.MISSED_TIMEOUT in kinds:
            flags.missing_timeout += 1
        if request.library.has_retry_api:
            flags.retry_lib_requests += 1
            if DefectKind.MISSED_RETRY in kinds:
                flags.missing_retry += 1
            config = result.config_of(request)
            if config is None or not config.has_retry_config:
                flags.missing_retry_config += 1
        if request.user_initiated:
            flags.user_requests += 1
            if DefectKind.MISSED_NOTIFICATION in kinds:
                flags.user_missing_notification += 1
        if request.library.has_response_check_api:
            flags.resp_lib_requests += 1
            if DefectKind.MISSED_RESPONSE_CHECK in kinds:
                flags.missing_response_check += 1
    for finding in result.findings:
        if finding.kind in _OVER_RETRY:
            flags.has_over_retry = True
            flags.over_retry_kinds.add(finding.kind)
            flags.over_retries += 1
            if finding.default_caused:
                flags.default_caused_over_retries += 1
    flags.custom_retry_loops = len(result.retry_loops)
    return flags


# ---------------------------------------------------------------------------
# Table 6 — percentage of buggy apps per NPD cause
# ---------------------------------------------------------------------------


@dataclass
class Table6Row:
    cause: str
    eval_condition: str
    evaluated: int
    buggy: int

    @property
    def percent(self) -> int:
        return round(100 * self.buggy / self.evaluated) if self.evaluated else 0


def table6(results: list[ScanResult]) -> list[Table6Row]:
    flags = [app_flags(r) for r in results]
    with_requests = [f for f in flags if f.total_requests]
    retry_apps = [f for f in flags if f.retry_lib_requests]
    user_apps = [f for f in flags if f.user_requests]
    resp_apps = [f for f in flags if f.resp_lib_requests]
    return [
        Table6Row(
            "Missed conn. checks",
            "All apps",
            len(with_requests),
            sum(f.never_checks_connectivity for f in with_requests),
        ),
        Table6Row(
            "Missed timeout APIs",
            "Use libs that have timeout APIs",
            len(with_requests),
            sum(f.never_sets_timeout for f in with_requests),
        ),
        Table6Row(
            "Missed retry APIs",
            "Use libs that have retry APIs",
            len(retry_apps),
            sum(f.never_sets_retry for f in retry_apps),
        ),
        Table6Row(
            "Over retries",
            "Use libs that have retry APIs",
            len(retry_apps),
            sum(f.has_over_retry for f in retry_apps),
        ),
        Table6Row(
            "Missed failure notifications",
            "Include user initiated requests",
            len(user_apps),
            sum(f.never_notifies for f in user_apps),
        ),
        Table6Row(
            "Missed response checks",
            "Use libs that have resp. check APIs",
            len(resp_apps),
            sum(f.missing_response_check > 0 for f in resp_apps),
        ),
    ]


# ---------------------------------------------------------------------------
# Table 7 — evaluated apps per library
# ---------------------------------------------------------------------------


def table7(results: list[ScanResult]) -> dict[str, int]:
    counts = {"Native": 0, "Volley": 0, "Android Async Http": 0, "Basic Http": 0, "OkHttp": 0}
    for result in results:
        used = result.libraries_used()
        if used & {"httpurlconnection", "apache"}:
            counts["Native"] += 1
        if "volley" in used:
            counts["Volley"] += 1
        if "asynchttp" in used:
            counts["Android Async Http"] += 1
        if "basichttp" in used:
            counts["Basic Http"] += 1
        if "okhttp" in used:
            counts["OkHttp"] += 1
    return counts


# ---------------------------------------------------------------------------
# Table 8 — inappropriate retry behaviours
# ---------------------------------------------------------------------------


@dataclass
class Table8Row:
    cause: str
    apps_percent: int
    default_caused_percent: int


def table8(results: list[ScanResult]) -> list[Table8Row]:
    flags = [app_flags(r) for r in results]
    retry_apps = [f for f in flags if f.retry_lib_requests]
    n = len(retry_apps)

    def row(cause: str, kind: DefectKind) -> Table8Row:
        apps_with = 0
        total_findings = 0
        default_caused = 0
        for result in results:
            matching = [f for f in result.findings if f.kind is kind]
            if not matching:
                continue
            app_flag = app_flags(result)
            if app_flag.retry_lib_requests:
                apps_with += 1
            total_findings += len(matching)
            default_caused += sum(f.default_caused for f in matching)
        return Table8Row(
            cause,
            round(100 * apps_with / n) if n else 0,
            round(100 * default_caused / total_findings) if total_findings else 0,
        )

    return [
        row("No retry in Activities", DefectKind.NO_RETRY_TIME_SENSITIVE),
        row("Over retry in Services", DefectKind.OVER_RETRY_SERVICE),
        row("Over retry in POST requests", DefectKind.OVER_RETRY_POST),
    ]


# ---------------------------------------------------------------------------
# Figures 8 and 9 — CDFs over per-app miss ratios
# ---------------------------------------------------------------------------


def fig8_conn_ratios(results: list[ScanResult]) -> list[float]:
    """Per-app ratio of requests missing the connectivity check, for apps
    that check *some but not all* requests (Fig 8 red line)."""
    ratios = []
    for result in results:
        flags = app_flags(result)
        if flags.total_requests and 0 < flags.missing_conn < flags.total_requests:
            ratios.append(flags.conn_miss_ratio)
    return ratios


def fig8_timeout_ratios(results: list[ScanResult]) -> list[float]:
    ratios = []
    for result in results:
        flags = app_flags(result)
        if flags.total_requests and 0 < flags.missing_timeout < flags.total_requests:
            ratios.append(flags.timeout_miss_ratio)
    return ratios


def fig9_notification_ratios(results: list[ScanResult]) -> list[float]:
    ratios = []
    for result in results:
        flags = app_flags(result)
        if (
            flags.user_requests
            and 0 < flags.user_missing_notification < flags.user_requests
        ):
            ratios.append(flags.notification_miss_ratio)
    return ratios


def cdf(values: list[float], points: Optional[list[float]] = None) -> list[tuple[float, float]]:
    """The empirical CDF of ``values`` sampled at ``points``."""
    if points is None:
        points = [i / 10 for i in range(11)]
    n = len(values)
    if n == 0:
        return [(p, 0.0) for p in points]
    sorted_values = sorted(values)
    return [
        (p, sum(1 for v in sorted_values if v <= p) / n)
        for p in points
    ]


def fraction_above(values: list[float], threshold: float) -> float:
    """Fraction of apps whose miss ratio exceeds ``threshold`` (the paper
    quotes "62 % of apps miss connectivity checking in over half of their
    requests")."""
    if not values:
        return 0.0
    return sum(1 for v in values if v > threshold) / len(values)


# ---------------------------------------------------------------------------
# §5.2.3 — explicit vs implicit callback notification rates
# ---------------------------------------------------------------------------


@dataclass
class NotificationSplit:
    explicit_requests: int = 0
    explicit_notified: int = 0
    implicit_requests: int = 0
    implicit_notified: int = 0
    error_type_checked_apps: int = 0
    apps_with_volley: int = 0

    @property
    def explicit_rate(self) -> float:
        return (
            self.explicit_notified / self.explicit_requests
            if self.explicit_requests
            else 0.0
        )

    @property
    def implicit_rate(self) -> float:
        return (
            self.implicit_notified / self.implicit_requests
            if self.implicit_requests
            else 0.0
        )


def notification_split(results: list[ScanResult]) -> NotificationSplit:
    split = NotificationSplit()
    for result in results:
        app_checks_types = False
        app_has_volley = False
        for request in result.requests:
            info = result.notification_of(request)
            if info is None:
                continue
            if info.has_explicit_error_callback:
                split.explicit_requests += 1
                split.explicit_notified += info.notified
            else:
                split.implicit_requests += 1
                split.implicit_notified += info.notified
            if request.library.exposes_error_types:
                app_has_volley = True
                app_checks_types = app_checks_types or info.checks_error_types
        if app_has_volley:
            split.apps_with_volley += 1
            split.error_type_checked_apps += app_checks_types
    return split
