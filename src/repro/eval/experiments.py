"""Experiment registry: one runner per paper table/figure.

Each runner returns an :class:`ExperimentReport` with the rendered text
plus the raw data, so both the CLI (``nchecker experiments``) and the
benchmark suite share one implementation.  Corpus scans are cached per
(seed, size) within the process — scanning 285 synthetic apps is cheap
but not free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.checker import NChecker, ScanResult
from ..corpus.groundtruth import overall_accuracy, table9_confusions
from ..corpus.opensource import build_opensource_corpus
from ..corpus.profiles import PAPER_PROFILE
from ..corpus.study import (
    IMPACT_CASES,
    REPRESENTATIVE_NPDS,
    ROOT_CAUSE_CASES,
    STUDIED_APPS,
    TOTAL_STUDIED_NPDS,
    impact_distribution_percent,
    root_cause_distribution_percent,
)
from ..libmodels import default_registry, render_table4
from ..netsim.http import RequestPolicy, download_success_rate
from ..netsim.link import THREE_G_CLEAN, THREE_G_LOSSY
from ..userstudy import run_study
from .guidelines import derive_guidelines
from .metrics import (
    cdf,
    fig8_conn_ratios,
    fig8_timeout_ratios,
    fig9_notification_ratios,
    fraction_above,
    notification_split,
    table6,
    table7,
    table8,
)
from .tables import percent, render_cdf, render_table


@dataclass
class ExperimentReport:
    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"=== {self.exp_id}: {self.title} ===\n{self.text}"


#: (seed, n_apps) -> scan results, shared across experiments in-process.
_SCAN_CACHE: dict[tuple[int, int], list[ScanResult]] = {}
#: (seed, n_apps) -> merged metrics snapshot of the cached scan.
_TELEMETRY_CACHE: dict[tuple[int, int], dict] = {}


def corpus_scan(
    n_apps: int = 285,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
) -> list[ScanResult]:
    """Scan the synthetic evaluation corpus (cached).

    ``jobs`` fans the scan across worker processes (results are
    index-ordered and identical to a serial scan); it defaults to the
    ``NCHECKER_JOBS`` environment variable, else serial.
    """
    profile = PAPER_PROFILE if seed is None else PAPER_PROFILE.__class__(
        mix=PAPER_PROFILE.mix, rates=PAPER_PROFILE.rates, seed=seed
    )
    key = (profile.seed, n_apps)
    if key not in _SCAN_CACHE:
        if jobs is None:
            import os

            jobs = int(os.environ.get("NCHECKER_JOBS", "1"))
        from ..pipeline.batch import scan_corpus

        telemetry: dict = {}
        _SCAN_CACHE[key] = scan_corpus(
            profile, n_apps, jobs=jobs, telemetry=telemetry
        )
        _TELEMETRY_CACHE[key] = telemetry
    return _SCAN_CACHE[key]


def corpus_telemetry(n_apps: int = 285, seed: Optional[int] = None) -> dict:
    """The merged metrics snapshot of the (cached) corpus scan — public
    per-pass/per-artifact accounting for benchmarks and reports."""
    profile_seed = PAPER_PROFILE.seed if seed is None else seed
    if (profile_seed, n_apps) not in _TELEMETRY_CACHE:
        corpus_scan(n_apps, seed=seed)
    return _TELEMETRY_CACHE[(profile_seed, n_apps)]


# -- individual experiments -----------------------------------------------------


def run_fig3(trials: int = 200) -> ExperimentReport:
    """Fig 3: success rate of Volley-default downloads vs size × loss."""
    sizes = [2 * 1024 * (2 ** i) for i in range(11)]  # 2K .. 2M
    policy = RequestPolicy.volley_default()
    series = {}
    for link in (THREE_G_CLEAN, THREE_G_LOSSY):
        series[link.name] = [
            download_success_rate(link, size, policy, trials=trials)
            for size in sizes
        ]
    labels = ["2K", "4K", "8K", "16K", "32K", "64K", "128K", "256K", "512K", "1M", "2M"]
    rows = [["file size", *labels]]
    for name, rates in series.items():
        rows.append([name, *[f"{r:.2f}" for r in rates]])
    return ExperimentReport(
        "fig3",
        "Sensitivity of default API parameters to network conditions",
        render_table(rows),
        {"sizes": sizes, "series": series},
    )


def run_study_tables() -> ExperimentReport:
    """Tables 1-3 and Fig 4: the empirical study."""
    parts = []
    rows = [["App/Sys", "Category", "#Installs"]]
    rows += [[a.name, a.category, a.installs] for a in STUDIED_APPS]
    parts.append(render_table(rows, "Table 1: studied apps"))

    rows = [["ID", "Category", "App", "NPD description", "Resolution"]]
    rows += [
        [n.case_id, n.category, n.app, n.description, n.resolution]
        for n in REPRESENTATIVE_NPDS
    ]
    parts.append(render_table(rows, "\nTable 2: representative NPDs"))

    impact = impact_distribution_percent()
    rows = [["Impact", "% of 90 NPDs"]]
    rows += [[i.value, f"{p}%"] for i, p in impact.items()]
    parts.append(render_table(rows, "\nFig 4: UX impact distribution"))

    causes = root_cause_distribution_percent()
    rows = [["Root cause", "# Cases (%)"]]
    rows += [
        [c.value, f"{ROOT_CAUSE_CASES[c]} ({p}%)"] for c, p in causes.items()
    ]
    parts.append(render_table(rows, "\nTable 3: root causes"))
    return ExperimentReport(
        "study",
        "Empirical study (Tables 1-3, Fig 4)",
        "\n".join(parts),
        {
            "impact_percent": impact,
            "cause_percent": causes,
            "total": TOTAL_STUDIED_NPDS,
        },
    )


def run_table4() -> ExperimentReport:
    rows = render_table4()
    counts = default_registry().counts()
    text = render_table(rows, "Table 4: library NPD tolerance (* auto, o manual)")
    text += (
        f"\nAnnotated APIs: {counts['target_apis']} target, "
        f"{counts['config_apis']} config, "
        f"{counts['response_check_apis']} response-checking"
    )
    return ExperimentReport(
        "table4", "Library capability matrix", text, {"counts": counts}
    )


def run_table6(n_apps: int = 285) -> ExperimentReport:
    results = corpus_scan(n_apps)
    rows = [["NPD cause", "Eval. condition", "# Eval. apps", "# Buggy apps (%)"]]
    data = {}
    for row in table6(results):
        rows.append(
            [row.cause, row.eval_condition, row.evaluated, f"{row.buggy} ({row.percent}%)"]
        )
        data[row.cause] = (row.evaluated, row.buggy, row.percent)
    total_npds = sum(len(r.findings) for r in results)
    buggy_apps = sum(1 for r in results if r.is_buggy)
    text = render_table(rows, "Table 6: buggy apps per NPD cause")
    text += f"\nTotal NPDs: {total_npds} in {buggy_apps}/{len(results)} apps"
    data["total_npds"] = total_npds
    data["buggy_apps"] = buggy_apps
    data["n_apps"] = len(results)
    # Public per-pass/per-artifact accounting of the scan that produced
    # this table (counters only — timings vary run to run and would break
    # deterministic exports).
    data["telemetry"] = dict(corpus_telemetry(n_apps).get("counters", {}))
    return ExperimentReport("table6", "Detection effectiveness", text, data)


def run_table6x() -> ExperimentReport:
    """Extended Table 6: per-kind precision/recall of the thread-context
    and callback-lifecycle checks on the lifecycle corpus."""
    from ..core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS, NCheckerOptions
    from ..corpus.groundtruth import Confusion, confusion_for_app
    from ..corpus.lifecycle import EXTENDED_KINDS, build_lifecycle_corpus

    corpus = build_lifecycle_corpus()
    checker = NChecker(
        options=NCheckerOptions(enabled_checks=DEFAULT_CHECKS | EXTENDED_CHECKS)
    )
    results = [checker.scan(apk) for apk, _ in corpus]
    rows = [
        ["NPD cause", "# Injected", "# Correct", "# FP", "# FN",
         "Precision", "Recall"]
    ]
    data: dict = {}
    for kind in EXTENDED_KINDS:
        total = Confusion()
        for (_apk, truth), result in zip(corpus, results):
            total = total + confusion_for_app(truth, result, frozenset({kind}))
        injected = total.correct + total.false_negatives
        precision = total.correct / total.reported if total.reported else 1.0
        recall = total.correct / injected if injected else 1.0
        rows.append(
            [
                kind.value,
                injected,
                total.correct,
                total.false_positives,
                total.false_negatives,
                f"{precision:.2f}",
                f"{recall:.2f}",
            ]
        )
        data[kind.value] = {
            "injected": injected,
            "correct": total.correct,
            "false_positives": total.false_positives,
            "false_negatives": total.false_negatives,
            "precision": precision,
            "recall": recall,
        }
    text = render_table(
        rows, "Table 6x: extended-taxonomy checks on the lifecycle corpus"
    )
    text += f"\nApps: {len(corpus)} (buggy + clean variants per defect class)"
    data["n_apps"] = len(corpus)
    return ExperimentReport(
        "table6x", "Extended-check precision/recall", text, data
    )


def run_table7(n_apps: int = 285) -> ExperimentReport:
    results = corpus_scan(n_apps)
    counts = table7(results)
    rows = [["Lib used", "# Apps"], *[[k, v] for k, v in counts.items()]]
    return ExperimentReport(
        "table7", "Evaluated apps per library", render_table(rows), {"counts": counts}
    )


def run_table8(n_apps: int = 285) -> ExperimentReport:
    results = corpus_scan(n_apps)
    rows = [["NPD cause", "Apps (%)", "Default behavior"]]
    data = {}
    for row in table8(results):
        rows.append([row.cause, f"{row.apps_percent}%", f"{row.default_caused_percent}%"])
        data[row.cause] = (row.apps_percent, row.default_caused_percent)
    return ExperimentReport(
        "table8", "Inappropriate retry behaviours", render_table(rows), data
    )


def run_fig8(n_apps: int = 285) -> ExperimentReport:
    results = corpus_scan(n_apps)
    conn = fig8_conn_ratios(results)
    timeout = fig8_timeout_ratios(results)
    text = (
        "Fig 8: CDF of per-app ratio of requests missing the check\n"
        f"connectivity (n={len(conn)}, "
        f"{percent(sum(1 for v in conn if v > 0.5), len(conn))} miss >50%):\n"
        + render_cdf(conn)
        + f"\ntimeout (n={len(timeout)}, "
        f"{percent(sum(1 for v in timeout if v > 0.5), len(timeout))} miss >50%):\n"
        + render_cdf(timeout)
    )
    return ExperimentReport(
        "fig8",
        "CDF of requests missing connectivity check / timeout",
        text,
        {
            "conn_cdf": cdf(conn),
            "timeout_cdf": cdf(timeout),
            "conn_over_half": fraction_above(conn, 0.5),
            "timeout_over_half": fraction_above(timeout, 0.5),
        },
    )


def run_fig9(n_apps: int = 285) -> ExperimentReport:
    results = corpus_scan(n_apps)
    ratios = fig9_notification_ratios(results)
    split = notification_split(results)
    text = (
        f"Fig 9: CDF of user requests missing failure notification "
        f"(n={len(ratios)}):\n" + render_cdf(ratios)
    )
    text += (
        f"\nexplicit-callback requests notified: {split.explicit_rate:.0%}; "
        f"without explicit callback: {split.implicit_rate:.0%}"
    )
    return ExperimentReport(
        "fig9",
        "CDF of user requests missing failure notifications",
        text,
        {
            "cdf": cdf(ratios),
            "explicit_rate": split.explicit_rate,
            "implicit_rate": split.implicit_rate,
        },
    )


def run_table9() -> ExperimentReport:
    corpus = build_opensource_corpus()
    checker = NChecker()
    results = [checker.scan(apk) for apk, _ in corpus]
    truths = [t for _, t in corpus]
    table = table9_confusions(truths, results)
    rows = [["NPD cause", "# Correct warning", "# FP", "# Known FN"]]
    totals = [0, 0, 0]
    for label, confusion in table.items():
        rows.append(
            [label, confusion.correct, confusion.false_positives, confusion.false_negatives]
        )
        totals[0] += confusion.correct
        totals[1] += confusion.false_positives
        totals[2] += confusion.false_negatives
    rows.append(["Total", *totals])
    accuracy = overall_accuracy(table)
    text = render_table(rows, "Table 9: accuracy on 16 open-source apps")
    text += f"\nAccuracy: {accuracy:.1%}"
    return ExperimentReport(
        "table9",
        "Detection accuracy",
        text,
        {"table": table, "accuracy": accuracy, "totals": totals},
    )


def run_fig10(seed: int = 2016) -> ExperimentReport:
    study = run_study(seed=seed)
    rows = [["Task", "Mean fix time (min)", "95% CI (min)"]]
    for task in study.timing_tasks():
        rows.append([task.task.name, f"{task.mean:.2f}", f"±{task.ci95:.2f}"])
    rows.append(
        ["Overall", f"{study.overall_mean:.2f}", f"±{study.overall_ci95:.2f}"]
    )
    excluded = [t for t in study.tasks if not t.task.in_timing_figure]
    text = render_table(rows, "Fig 10 / Table 10: user-study fix times")
    for task in excluded:
        text += (
            f"\nExcluded: {task.task.name} — solved by {task.solved}/"
            f"{len(task.times_minutes)} participants"
        )
    # The control arm the paper did not run: the same tasks without
    # NChecker's reports.
    control = run_study(seed=seed, with_reports=False)
    text += (
        f"\nControl arm (no NChecker reports): "
        f"{control.overall_mean:.1f} ± {control.overall_ci95:.1f} min "
        f"({control.overall_mean / study.overall_mean:.1f}x slower)"
    )
    return ExperimentReport(
        "fig10",
        "User study",
        text,
        {
            "overall_mean": study.overall_mean,
            "overall_ci": study.overall_ci95,
            "per_task": {t.task.name: (t.mean, t.ci95) for t in study.tasks},
            "control_mean": control.overall_mean,
        },
    )


def run_table11(n_apps: int = 285) -> ExperimentReport:
    results = corpus_scan(n_apps)
    guidelines = derive_guidelines(results)
    rows = [["Observation", "Guideline"]]
    rows += [[g.observation, g.guideline] for g in guidelines]
    return ExperimentReport(
        "table11",
        "Library design guidelines",
        render_table(rows),
        {"guidelines": guidelines},
    )


def run_table2x() -> ExperimentReport:
    """Table 2, executed: for each representative NPD, scan the buggy and
    fixed variants and run both against the triggering network."""
    from ..corpus.casestudies import CASE_STUDIES
    from ..libmodels import extended_registry
    from .tables import render_table

    rows = [["ID", "App", "Symptom (buggy)", "Symptom (fixed)", "Flag cleared"]]
    data = {}
    for case in CASE_STUDIES:
        if case.uses_xmpp:
            from ..core.checker import NChecker as _NC, NCheckerOptions as _Opt

            checker = _NC(
                registry=extended_registry(),
                options=_Opt(check_network_switch=True),
            )
        else:
            checker = NChecker()
        buggy_symptom = case.symptom(case.run(case.build_buggy()))
        fixed_symptom = case.symptom(case.run(case.build_fixed()))
        fixed_kinds = {f.kind for f in checker.scan(case.build_fixed()).findings}
        cleared = case.detected_as not in fixed_kinds
        rows.append(
            [
                case.case_id,
                case.app_name,
                "yes" if buggy_symptom else "no",
                "yes" if fixed_symptom else "no",
                "yes" if cleared else "no",
            ]
        )
        data[case.case_id] = {
            "app": case.app_name,
            "buggy_symptom": buggy_symptom,
            "fixed_symptom": fixed_symptom,
            "flag_cleared": cleared,
        }
    return ExperimentReport(
        "table2x",
        "Table 2 executed: representative NPDs, buggy vs fixed",
        render_table(rows),
        data,
    )


def run_manifestation(n_apps: int = 40) -> ExperimentReport:
    """Beyond the paper: execute the corpus under disruption and
    cross-tabulate detected defect kinds against observed symptoms."""
    from ..corpus.generator import CorpusGenerator
    from ..corpus.profiles import PAPER_PROFILE
    from .manifestation import manifestation_study, render_manifestation

    pairs = CorpusGenerator(PAPER_PROFILE.scaled(n_apps)).generate()
    rows = manifestation_study(pairs, seed=3)
    data = {
        row.kind.value: {
            "symptom": row.symptom,
            "flagged": row.flagged_apps,
            "flagged_rate": row.flagged_rate,
            "clean": row.clean_apps,
            "clean_rate": row.clean_rate,
        }
        for row in rows
    }
    return ExperimentReport(
        "manifest",
        "Defect manifestation under simulated disruption",
        render_manifestation(rows),
        data,
    )


#: The per-experiment index (see DESIGN.md).
EXPERIMENTS: dict[str, Callable[[], ExperimentReport]] = {
    "fig3": run_fig3,
    "study": run_study_tables,
    "table4": run_table4,
    "table6": run_table6,
    "table6x": run_table6x,
    "table7": run_table7,
    "table8": run_table8,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table9": run_table9,
    "fig10": run_fig10,
    "table11": run_table11,
    "manifest": run_manifestation,
    "table2x": run_table2x,
}


def run_all() -> list[ExperimentReport]:
    return [runner() for runner in EXPERIMENTS.values()]
