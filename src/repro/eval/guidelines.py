"""Table 11: observations → design guidelines for mobile network libraries.

The paper closes the loop from measurement to library design (§6): each
large-scale observation implies a guideline.  This module derives the
observation numbers from an actual corpus scan, pairing each with the
guideline text, so the printed Table 11 is *recomputed*, not quoted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.checker import ScanResult
from .metrics import (
    app_flags,
    notification_split,
    table6,
)


@dataclass(frozen=True)
class Guideline:
    observation: str
    guideline: str


def derive_guidelines(results: list[ScanResult]) -> list[Guideline]:
    """Recompute Table 11 from a corpus scan."""
    rows = {r.cause: r for r in table6(results)}
    flags = [app_flags(r) for r in results]
    retry_apps = [f for f in flags if f.retry_lib_requests]
    custom_retry_apps = sum(1 for f in flags if f.custom_retry_loops)
    over_retries = sum(f.over_retries for f in flags)
    default_over = sum(f.default_caused_over_retries for f in flags)
    split = notification_split(results)

    total_resp = sum(f.resp_lib_requests for f in flags)
    missed_resp = sum(f.missing_response_check for f in flags)

    def pct(n: int, d: int) -> int:
        return round(100 * n / d) if d else 0

    return [
        Guideline(
            f"{rows['Missed conn. checks'].percent}% apps never check "
            "network connectivity",
            "Automatically check connectivity before each network request",
        ),
        Guideline(
            f"{rows['Missed retry APIs'].percent}% apps ignore retry APIs; "
            f"only {pct(custom_retry_apps, len(flags))}% apps impl. "
            "customized retry",
            "Automatically retry on transient network error",
        ),
        Guideline(
            f"Over {pct(default_over, over_retries)}% of over retries are "
            "caused by default API values",
            "Set default retries considering the request context",
        ),
        Guideline(
            f"{rows['Missed failure notifications'].percent}% apps never "
            "show failure notifications for user-initiated requests",
            "Pre-define error message on network failure",
        ),
        Guideline(
            f"{pct(missed_resp, total_resp)}% of network requests miss "
            "validity checks",
            "Automatically put invalid response into error callbacks",
        ),
        Guideline(
            f"More apps show error mesg. in explicit error callbacks "
            f"({round(100 * split.explicit_rate)}%) than implicit ones "
            f"({round(100 * split.implicit_rate)}%)",
            "Explicitly separate success and error network callbacks",
        ),
        Guideline(
            f"{100 - pct(split.error_type_checked_apps, split.apps_with_volley)}"
            "% apps do not check error types",
            "Expose important error types in addition to error callbacks",
        ),
    ]
