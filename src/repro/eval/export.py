"""Machine-readable export of experiment artifacts (CSV for series/CDFs,
JSON for everything), so figures can be re-plotted outside this repo."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .experiments import ExperimentReport


def export_report(report: ExperimentReport, directory: Path) -> list[Path]:
    """Write ``report`` to ``directory``; returns the files written."""
    written: list[Path] = []
    text_path = directory / f"{report.exp_id}.txt"
    text_path.write_text(report.text + "\n")
    written.append(text_path)

    json_path = directory / f"{report.exp_id}.json"
    json_path.write_text(
        json.dumps(
            {
                "id": report.exp_id,
                "title": report.title,
                "data": _jsonable(report.data),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    written.append(json_path)

    csv_rows = _csv_rows(report)
    if csv_rows:
        csv_path = directory / f"{report.exp_id}.csv"
        with csv_path.open("w", newline="") as handle:
            csv.writer(handle).writerows(csv_rows)
        written.append(csv_path)
    return written


def _csv_rows(report: ExperimentReport) -> list[list[Any]]:
    """Series-shaped data becomes CSV; tables stay in .txt/.json."""
    data = report.data
    if report.exp_id == "fig3":
        rows = [["size_bytes", *data["series"].keys()]]
        for i, size in enumerate(data["sizes"]):
            rows.append([size, *[series[i] for series in data["series"].values()]])
        return rows
    if report.exp_id == "fig8":
        rows = [["ratio", "conn_cdf", "timeout_cdf"]]
        for (p, conn), (_p2, timeout) in zip(data["conn_cdf"], data["timeout_cdf"]):
            rows.append([p, conn, timeout])
        return rows
    if report.exp_id == "fig9":
        rows = [["ratio", "cdf"]]
        rows.extend([p, v] for p, v in data["cdf"])
        return rows
    if report.exp_id == "fig10":
        rows = [["task", "mean_minutes", "ci95_minutes"]]
        for name, (mean, ci) in data["per_task"].items():
            rows.append([name, round(mean, 3), round(ci, 3)])
        rows.append(["Overall", round(data["overall_mean"], 3), round(data["overall_ci"], 3)])
        return rows
    return []


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment data to JSON-safe values."""
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value") and not callable(value.value):  # Enum
        return value.value
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()}
    return str(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if hasattr(key, "value") and not callable(key.value):
        return str(key.value)
    return str(key)
