"""SARIF 2.1.0 export of scan results (``nchecker scan --sarif``).

One ``result`` per :class:`~repro.core.findings.Finding`, so editors and
CI annotators (GitHub code scanning, VS Code SARIF viewer) can surface
NChecker warnings next to the code.  Defect kinds become the run's
``rules``; the finding's method/statement anchor becomes a logical
location plus a region whose ``startLine`` is the 1-based statement
index within the ``.apkt`` artifact.
"""

from __future__ import annotations

import json
from typing import Optional

from ..core.checker import ScanResult
from ..core.defects import DefectKind, Impact, defect_info
from ..core.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF has three ``level`` values; crash-capable defects are errors.
_LEVEL_BY_IMPACT = {
    Impact.CRASH_FREEZE: "error",
}


def _rule(kind: DefectKind) -> dict:
    info = defect_info(kind)
    return {
        "id": kind.value,
        "name": kind.name.title().replace("_", ""),
        "shortDescription": {"text": kind.value.replace("-", " ")},
        "fullDescription": {
            "text": f"Root cause: {info.root_cause.value}; "
            f"impact: {info.impact.value}."
        },
        "help": {"text": info.fix_template},
        "defaultConfiguration": {
            "level": _LEVEL_BY_IMPACT.get(info.impact, "warning")
        },
    }


def _result(finding: Finding, artifact_uri: Optional[str]) -> dict:
    cls, name, arity = finding.method_key
    physical: dict = {
        "region": {"startLine": finding.stmt_index + 1}
    }
    if artifact_uri is not None:
        physical["artifactLocation"] = {"uri": artifact_uri}
    result = {
        "ruleId": finding.kind.value,
        "level": _LEVEL_BY_IMPACT.get(finding.info.impact, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": physical,
                "logicalLocations": [
                    {
                        "fullyQualifiedName": f"{cls}.{name}",
                        "kind": "function",
                    }
                ],
            }
        ],
        "properties": {
            "context": finding.context,
            "defaultCaused": finding.default_caused,
            "statementIndex": finding.stmt_index,
            "arity": arity,
        },
    }
    return result


def finding_result(finding: Finding, artifact_uri: Optional[str]) -> dict:
    """The SARIF ``result`` object for one finding (public entry point
    for the batch scanner, whose workers pre-render these)."""
    return _result(finding, artifact_uri)


def assemble_sarif_log(kind_values: list[str], results: list[dict]) -> dict:
    """Assemble a SARIF log from pre-rendered pieces.

    ``kind_values`` are the ``DefectKind.value`` strings of every finding
    (duplicates fine — they define the run's rules); ``results`` are
    :func:`finding_result` objects, already in output order.  The batch
    scanner uses this to merge per-worker renderings without touching
    live analysis objects.
    """
    kinds = [DefectKind(value) for value in sorted(set(kind_values))]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "nchecker",
                        "informationUri": (
                            "https://doi.org/10.1145/2901318.2901353"
                        ),
                        "rules": [_rule(kind) for kind in kinds],
                    }
                },
                "results": list(results),
            }
        ],
    }


def sarif_log(
    results: list[ScanResult], artifact_uris: Optional[list[Optional[str]]] = None
) -> dict:
    """The SARIF log object for one or more scans (one ``run`` total).

    ``artifact_uris`` pairs each scan with the ``.apkt`` path it came
    from; pass ``None`` entries (or omit the list) for in-memory apps.
    """
    if artifact_uris is None:
        artifact_uris = [None] * len(results)
    kind_values = [
        f.kind.value for result in results for f in result.findings
    ]
    sarif_results = [
        _result(finding, uri)
        for result, uri in zip(results, artifact_uris)
        for finding in result.findings
    ]
    return assemble_sarif_log(kind_values, sarif_results)


def dumps_sarif(
    results: list[ScanResult], artifact_uris: Optional[list[Optional[str]]] = None
) -> str:
    return json.dumps(sarif_log(results, artifact_uris), indent=2)
